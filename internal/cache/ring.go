package cache

import (
	"sync/atomic"

	"cdrc/internal/ds"
)

// ring is the eviction index: a bounded MPMC queue (Vyukov's array queue)
// of CacheRef records, each owning one weak-count unit on the entry it
// tracks. Rotating pop-from-head/push-to-tail over it implements the
// clock hand; server workers, the shard sweeper, and an adopting survivor
// all touch it concurrently, lock-free.
type ring struct {
	mask uint64
	slot []ringSlot
	_    [6]uint64
	head atomic.Uint64 // pop position
	_    [7]uint64
	tail atomic.Uint64 // push position
	_    [7]uint64
}

type ringSlot struct {
	seq  atomic.Uint64
	key  uint64
	word uint64
}

func newRing(capacity int) *ring {
	n := 16
	for n < capacity {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), slot: make([]ringSlot, n)}
	for i := range r.slot {
		r.slot[i].seq.Store(uint64(i))
	}
	return r
}

// cap returns the record capacity.
func (r *ring) cap() int { return len(r.slot) }

// len approximates the resident record count (exact at quiescence).
func (r *ring) len() int {
	n := int64(r.tail.Load()) - int64(r.head.Load())
	if n < 0 {
		n = 0
	}
	return int(n)
}

// push appends a record; false means the ring is full and the caller must
// pop a victim before retrying.
func (r *ring) push(ref ds.CacheRef) bool {
	for {
		pos := r.tail.Load()
		s := &r.slot[pos&r.mask]
		dif := int64(s.seq.Load()) - int64(pos)
		switch {
		case dif == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.key = ref.Key
				s.word = ref.Word
				s.seq.Store(pos + 1)
				return true
			}
		case dif < 0:
			return false
		}
	}
}

// pop removes the oldest record; false means the ring is empty.
func (r *ring) pop() (ds.CacheRef, bool) {
	for {
		pos := r.head.Load()
		s := &r.slot[pos&r.mask]
		dif := int64(s.seq.Load()) - int64(pos+1)
		switch {
		case dif == 0:
			if r.head.CompareAndSwap(pos, pos+1) {
				ref := ds.CacheRef{Key: s.key, Word: s.word}
				s.seq.Store(pos + r.mask + 1)
				return ref, true
			}
		case dif < 0:
			return ds.CacheRef{}, false
		}
	}
}
