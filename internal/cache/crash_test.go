package cache

import (
	"sync"
	"testing"
	"time"

	"cdrc/internal/chaos"
)

// crashChurn runs one worker's churn loop, surviving simulated crashes the
// way a server worker does: recover the CrashSignal, Abandon the handle
// (which re-indexes its in-flight eviction records), and reattach. Returns
// the number of deaths this worker absorbed.
func crashChurn(t *testing.T, c *Cache, seed uint64, ops int) int {
	t.Helper()
	h := c.Attach()
	defer func() {
		if h != nil {
			h.Close()
		}
	}()
	deaths := 0
	r := seed*2654435761 + 1
	for i := 0; i < ops; {
		survived := func() (ok bool) {
			defer func() {
				rec := recover()
				if rec == nil {
					return
				}
				if _, isCrash := rec.(chaos.CrashSignal); !isCrash {
					panic(rec)
				}
				h.Abandon()
				h = nil
				ok = false
			}()
			r = r*6364136223846793005 + 1442695040888963407
			k := (r >> 33) % 512
			switch r % 8 {
			case 0:
				h.Del(k)
			case 1:
				h.Expire(k, time.Duration(r%3)*time.Millisecond)
			case 2, 3, 4:
				if _, _, err := h.SetEx(k, k, time.Duration(r%4)*time.Millisecond); err != nil {
					t.Errorf("set %d: %v", k, err)
				}
			default:
				h.GetEx(k, time.Millisecond)
			}
			return true
		}()
		if survived {
			i++
			continue
		}
		deaths++
		h = c.Attach()
	}
	return deaths
}

// TestCacheCrashAtWeakRefPoints is the weak-reference crash coverage: a
// simulated thread death while an index record is popped-but-unconsumed
// (cache.evict.step), just after a fresh record was minted and pushed
// (cache.index.push), or at a sweeper tick (cache.sweep.op) must never
// lose or double a record's weak unit. DebugChecks turns a doubled
// slot-free decision into a use-after-free panic; the conservation
// identity catches a lost one (the entry would stay resident with no
// record able to unlink it — or be unlinked twice and over-count); Close
// proves Live() == 0 either way.
func TestCacheCrashAtWeakRefPoints(t *testing.T) {
	cases := []struct {
		name   string
		faults map[string]chaos.Fault
	}{
		{"index-push", map[string]chaos.Fault{
			"cache.index.push": {Prob: 0.01, Crash: true},
		}},
		{"evict-step", map[string]chaos.Fault{
			"cache.evict.step": {Prob: 0.01, Crash: true},
		}},
		{"sweep-op", map[string]chaos.Fault{
			"cache.sweep.op": {Prob: 0.5, Crash: true},
		}},
		{"mixed", map[string]chaos.Fault{
			"cache.index.push": {Prob: 0.005, Crash: true},
			"cache.evict.step": {Prob: 0.005, Crash: true},
			"cache.sweep.op":   {Prob: 0.2, Crash: true},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chaos.Enable(chaos.Config{Seed: 7, CrashBudget: 8, Faults: tc.faults})
			c := New(Config{ExpectedKeys: 512, Capacity: 128, MaxProcs: 32,
				SweepInterval: time.Millisecond, DebugChecks: true})
			c.StartSweeper()
			const workers = 6
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					crashChurn(t, c, uint64(w+1), 4000)
				}(w)
			}
			wg.Wait()
			if chaos.Crashes() == 0 {
				t.Error("no simulated crashes fired; the point is not covered")
			}
			chaos.Disable() // teardown must run clean
			identityOrFail(t, c)
			if got := c.Resident(); got > 128 {
				t.Errorf("resident %d exceeds arena cap 128 after crashes", got)
			}
			closeOrFail(t, c)
		})
	}
}

// TestCacheAbandonReindexesInflight pins the adoption contract directly:
// a handle that dies holding popped-unconsumed records must hand them
// back to the index, so a survivor can still evict those entries.
func TestCacheAbandonReindexesInflight(t *testing.T) {
	c := New(Config{ExpectedKeys: 64, DebugChecks: true})
	h := c.Attach()
	for k := uint64(0); k < 8; k++ {
		if _, _, err := h.SetEx(k, k, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Pop half the records by hand and park them, simulating a death
	// mid-eviction (between the pop and the EvictStep).
	before := c.idx.len()
	for i := 0; i < 4; i++ {
		ref, ok := c.idx.pop()
		if !ok {
			t.Fatal("index dry")
		}
		h.park(ref)
	}
	if got := c.idx.len(); got != before-4 {
		t.Fatalf("index length %d after 4 pops, want %d", got, before-4)
	}
	h.Abandon()
	if got := c.idx.len(); got != before {
		t.Fatalf("index length %d after Abandon, want %d (in-flight re-indexed)", got, before)
	}
	// A fresh handle can still evict everything: the weak units survived.
	h2 := c.Attach()
	now := nowNanos()
	for i := 0; i < 64 && c.Resident() > 0; i++ {
		h2.step(now)
	}
	if got := c.Resident(); got != 0 {
		t.Fatalf("%d entries stuck resident after adoption", got)
	}
	h2.Close()
	identityOrFail(t, c)
	closeOrFail(t, c)
}
