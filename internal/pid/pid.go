// Package pid provides a registry of processor identifiers.
//
// The algorithms in this module (acquire-retire, deferred reference
// counting, and the manual SMR baselines) all assume a fixed bound P on the
// number of concurrent processes and give each process a private set of
// announcement slots indexed by a small integer id. C++ implementations
// bind these ids to OS threads with thread-local storage; in Go a worker
// goroutine instead registers with a Registry to obtain an id for the
// duration of its work and releases it when done. Ids are reused.
package pid

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DefaultMaxProcs is the registry capacity used when a component is created
// without an explicit bound. It is sized for the largest sweeps in the
// benchmark harness (the paper runs up to 200 threads).
const DefaultMaxProcs = 256

// Registry hands out processor ids in [0, Cap()). The zero value is not
// usable; create one with NewRegistry.
type Registry struct {
	mu        sync.Mutex
	free      []int        // stack of released ids
	next      int          // next never-used id
	hw        atomic.Int64 // mirrors next so HighWater skips the lock
	cap       int
	inUse     int
	abandoned map[int]bool // ids whose owner died without Release
	reserved  map[int]bool // ids held out of circulation by TryReserve
}

// NewRegistry returns a registry that can have at most maxProcs ids
// registered simultaneously. If maxProcs <= 0 it uses DefaultMaxProcs.
func NewRegistry(maxProcs int) *Registry {
	if maxProcs <= 0 {
		maxProcs = DefaultMaxProcs
	}
	return &Registry{cap: maxProcs}
}

// Cap returns the maximum number of simultaneously registered ids.
func (r *Registry) Cap() int { return r.cap }

// InUse returns the number of currently registered ids.
func (r *Registry) InUse() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inUse
}

// Register claims a processor id. It panics if the registry is full, since
// exceeding P is a configuration error rather than a runtime condition the
// caller can meaningfully handle mid-operation.
func (r *Registry) Register() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var id int
	switch {
	case len(r.free) > 0:
		id = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	case r.next < r.cap:
		id = r.next
		r.next++
		r.hw.Store(int64(r.next))
	default:
		panic(fmt.Sprintf("pid: registry full (maxProcs=%d)", r.cap))
	}
	r.inUse++
	return id
}

// TryRegister claims a processor id, reporting false when the registry is
// full instead of panicking.
func (r *Registry) TryRegister() (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var id int
	switch {
	case len(r.free) > 0:
		id = r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
	case r.next < r.cap:
		id = r.next
		r.next++
		r.hw.Store(int64(r.next))
	default:
		return 0, false
	}
	r.inUse++
	return id, true
}

// Release returns an id to the registry. Releasing an id that is not
// currently registered corrupts the registry, so callers must pair each
// Register with exactly one Release. Releasing an abandoned id panics:
// abandoned ids carry state (announcement slots, retired lists, arena free
// lists) that must be adopted and drained first, after which the adopter
// calls Reinstate.
func (r *Registry) Release(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= r.cap {
		panic(fmt.Sprintf("pid: release of out-of-range id %d (maxProcs=%d)", id, r.cap))
	}
	if r.abandoned[id] {
		panic(fmt.Sprintf("pid: release of abandoned id %d (adopt and Reinstate instead)", id))
	}
	r.free = append(r.free, id)
	r.inUse--
}

// TryReserve takes id out of circulation if and only if it is currently
// unowned (on the free stack: previously released, neither registered,
// abandoned, nor already reserved). While reserved the id cannot be
// handed out by Register, so the reserver holds the same exclusivity
// over the id's per-processor state that a registered owner would —
// the biased-count layer uses this to fold a detached pid's owner words
// on its behalf. Pair with Unreserve.
func (r *Registry) TryReserve(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, f := range r.free {
		if f != id {
			continue
		}
		r.free = append(r.free[:i], r.free[i+1:]...)
		if r.reserved == nil {
			r.reserved = make(map[int]bool)
		}
		r.reserved[id] = true
		return true
	}
	return false
}

// Unreserve returns an id taken by TryReserve to the free stack.
// Unreserving an id that is not currently reserved panics.
func (r *Registry) Unreserve(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.reserved[id] {
		panic(fmt.Sprintf("pid: unreserve of non-reserved id %d", id))
	}
	delete(r.reserved, id)
	r.free = append(r.free, id)
}

// Abandon marks a registered id as abandoned: its owner died (or was
// simulated to die) without Release. The id stays out of circulation -
// Register will never reissue it - until an adopter has taken over the
// owner's per-processor state and calls Reinstate. Abandoning an id twice
// is a no-op; abandoning an unregistered id is a caller bug but is not
// detectable here (the registry does not track which ids are out).
func (r *Registry) Abandon(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= r.cap {
		panic(fmt.Sprintf("pid: abandon of out-of-range id %d (maxProcs=%d)", id, r.cap))
	}
	if r.abandoned == nil {
		r.abandoned = make(map[int]bool)
	}
	r.abandoned[id] = true
}

// Reinstate returns an abandoned id to circulation. Only the adopter that
// has finished evacuating the id's state (announcements cleared, retired
// lists adopted, arena free lists drained) may call it; reinstating an id
// that was never abandoned panics.
func (r *Registry) Reinstate(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.abandoned[id] {
		panic(fmt.Sprintf("pid: reinstate of non-abandoned id %d", id))
	}
	delete(r.abandoned, id)
	r.free = append(r.free, id)
	r.inUse--
}

// Abandoned returns the currently abandoned ids (diagnostics).
func (r *Registry) Abandoned() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, 0, len(r.abandoned))
	for id := range r.abandoned {
		out = append(out, id)
	}
	return out
}

// HighWater returns the number of distinct ids ever handed out. Scans over
// announcement slots only need to cover [0, HighWater()). Lock-free: the
// value is monotone and mirrored atomically by Register, so it is called
// on every incremental scan step without touching the registry lock.
func (r *Registry) HighWater() int {
	return int(r.hw.Load())
}
