package pid

import (
	"sync"
	"testing"
)

func TestRegisterSequential(t *testing.T) {
	r := NewRegistry(4)
	ids := map[int]bool{}
	for i := 0; i < 4; i++ {
		id := r.Register()
		if id < 0 || id >= 4 {
			t.Fatalf("id %d out of range", id)
		}
		if ids[id] {
			t.Fatalf("duplicate id %d", id)
		}
		ids[id] = true
	}
	if got := r.InUse(); got != 4 {
		t.Fatalf("InUse = %d, want 4", got)
	}
}

func TestRegisterFullPanics(t *testing.T) {
	r := NewRegistry(1)
	r.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on full registry")
		}
	}()
	r.Register()
}

func TestTryRegisterFull(t *testing.T) {
	r := NewRegistry(2)
	if _, ok := r.TryRegister(); !ok {
		t.Fatal("first TryRegister failed")
	}
	if _, ok := r.TryRegister(); !ok {
		t.Fatal("second TryRegister failed")
	}
	if _, ok := r.TryRegister(); ok {
		t.Fatal("TryRegister succeeded on full registry")
	}
}

func TestReuseAfterRelease(t *testing.T) {
	r := NewRegistry(2)
	a := r.Register()
	b := r.Register()
	r.Release(a)
	c := r.Register()
	if c != a {
		t.Fatalf("expected released id %d to be reused, got %d", a, c)
	}
	r.Release(b)
	r.Release(c)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing all", r.InUse())
	}
}

func TestReleaseOutOfRangePanics(t *testing.T) {
	r := NewRegistry(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range release")
		}
	}()
	r.Release(7)
}

func TestHighWater(t *testing.T) {
	r := NewRegistry(8)
	a := r.Register()
	b := r.Register()
	r.Release(a)
	r.Release(b)
	r.Register() // reuses
	if hw := r.HighWater(); hw != 2 {
		t.Fatalf("HighWater = %d, want 2", hw)
	}
}

func TestDefaultCap(t *testing.T) {
	r := NewRegistry(0)
	if r.Cap() != DefaultMaxProcs {
		t.Fatalf("Cap = %d, want %d", r.Cap(), DefaultMaxProcs)
	}
}

func TestConcurrentRegisterRelease(t *testing.T) {
	const workers = 32
	const iters = 200
	r := NewRegistry(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := r.Register()
				if id < 0 || id >= workers {
					t.Errorf("id %d out of range", id)
					return
				}
				r.Release(id)
			}
		}()
	}
	wg.Wait()
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d at quiescence", r.InUse())
	}
}
