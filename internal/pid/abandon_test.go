package pid

import "testing"

func TestAbandonedIdNotReissued(t *testing.T) {
	r := NewRegistry(3)
	a := r.Register()
	r.Abandon(a)

	// The remaining capacity is issuable, but never a.
	var got []int
	for {
		id, ok := r.TryRegister()
		if !ok {
			break
		}
		if id == a {
			t.Fatalf("abandoned id %d reissued before Reinstate", a)
		}
		got = append(got, id)
	}
	if len(got) != 2 {
		t.Fatalf("registered %d ids alongside one abandoned, want 2", len(got))
	}
	for _, id := range got {
		r.Release(id)
	}

	if ab := r.Abandoned(); len(ab) != 1 || ab[0] != a {
		t.Fatalf("Abandoned() = %v, want [%d]", ab, a)
	}

	r.Reinstate(a)
	if r.InUse() != 0 {
		t.Fatalf("InUse = %d after reinstate, want 0", r.InUse())
	}
	// Now a is reissuable again.
	seen := false
	for i := 0; i < 3; i++ {
		if r.Register() == a {
			seen = true
		}
	}
	if !seen {
		t.Fatalf("id %d still unavailable after Reinstate", a)
	}
}

func TestReleaseOfAbandonedIdPanics(t *testing.T) {
	r := NewRegistry(2)
	id := r.Register()
	r.Abandon(id)
	defer func() {
		if recover() == nil {
			t.Fatal("Release of abandoned id did not panic")
		}
	}()
	r.Release(id)
}

func TestReinstateOfNonAbandonedIdPanics(t *testing.T) {
	r := NewRegistry(2)
	id := r.Register()
	defer func() {
		if recover() == nil {
			t.Fatal("Reinstate of non-abandoned id did not panic")
		}
	}()
	r.Reinstate(id)
}

func TestAbandonIsIdempotent(t *testing.T) {
	r := NewRegistry(2)
	id := r.Register()
	r.Abandon(id)
	r.Abandon(id)
	if got := len(r.Abandoned()); got != 1 {
		t.Fatalf("double Abandon tracked %d ids, want 1", got)
	}
	r.Reinstate(id)
}
