package cdrc

// One testing.B benchmark per figure of the paper's evaluation, plus the
// ablations from DESIGN.md. These run each figure's full scheme sweep at a
// short fixed duration and report throughput (and memory where the paper
// plots it) via b.ReportMetric, so `go test -bench` regenerates every
// figure at smoke-test scale; use cmd/cdrc-bench for full sweeps.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cdrc/internal/acqret"
	"cdrc/internal/bench"
	"cdrc/internal/core"
)

// benchOptions scales the figures to benchmark-friendly sizes; the CLI
// runs paper-scale parameters.
func benchOptions() bench.Options {
	o := bench.DefaultOptions()
	o.Threads = []int{4}
	o.Duration = 50 * time.Millisecond
	o.LoadStoreCellsLarge = 100_000
	o.HashSize = 4096
	o.BSTSize = 4096
	o.BSTLargeSize = 65536
	o.MemThreads = 4
	return o
}

// runFigure executes one figure sweep per b.N batch and reports each
// scheme's throughput as a named metric.
func runFigure(b *testing.B, id string) {
	f, ok := bench.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		f.Run(o, func(p bench.Point) {
			if i == b.N-1 { // report the last round
				tag := metricTag(p.Scheme)
				b.ReportMetric(p.Mops, tag+"_Mops")
				if id == "6d" || id == "6h" {
					b.ReportMetric(p.AvgAlloc, tag+"_alloc")
				}
				if id[0] == '7' {
					b.ReportMetric(float64(p.AvgUnrc), tag+"_extra")
				}
			}
		})
	}
}

// metricTag turns a scheme legend label into a testing.B metric unit
// (no whitespace allowed).
func metricTag(scheme string) string {
	r := strings.NewReplacer(" ", "", "(", "", ")", "", "+", "", "::", "-")
	return r.Replace(scheme)
}

func BenchmarkFig6a(b *testing.B) { runFigure(b, "6a") }
func BenchmarkFig6b(b *testing.B) { runFigure(b, "6b") }
func BenchmarkFig6c(b *testing.B) { runFigure(b, "6c") }
func BenchmarkFig6d(b *testing.B) { runFigure(b, "6d") }
func BenchmarkFig6e(b *testing.B) { runFigure(b, "6e") }
func BenchmarkFig6f(b *testing.B) { runFigure(b, "6f") }
func BenchmarkFig6g(b *testing.B) { runFigure(b, "6g") }
func BenchmarkFig6h(b *testing.B) { runFigure(b, "6h") }
func BenchmarkFig7a(b *testing.B) { runFigure(b, "7a") }
func BenchmarkFig7b(b *testing.B) { runFigure(b, "7b") }
func BenchmarkFig7c(b *testing.B) { runFigure(b, "7c") }
func BenchmarkFig7d(b *testing.B) { runFigure(b, "7d") }
func BenchmarkFig7e(b *testing.B) { runFigure(b, "7e") }
func BenchmarkFig7f(b *testing.B) { runFigure(b, "7f") }

// --- Ablation A1: lock-free vs wait-free acquire (§7 preliminary) ----------

func benchmarkAcquire(b *testing.B, mode acqret.Mode) {
	d := acqret.New(64, acqret.WithMode(mode))
	var src atomic.Uint64
	src.Store(42)
	b.RunParallel(func(pb *testing.PB) {
		p := d.Register()
		defer d.Unregister(p)
		for pb.Next() {
			d.Acquire(p, 0, &src)
			d.Release(p, 0)
		}
	})
}

func BenchmarkAblationAcquireLockFree(b *testing.B) {
	benchmarkAcquire(b, acqret.LockFreeAcquire)
}

func BenchmarkAblationAcquireWaitFree(b *testing.B) {
	benchmarkAcquire(b, acqret.WaitFreeAcquire)
}

func BenchmarkAblationAcquireCombined(b *testing.B) {
	benchmarkAcquire(b, acqret.CombinedAcquire)
}

// --- Ablation A2: deferred increments (snapshots) vs eager loads -----------

type a2node struct {
	V int64
}

func benchmarkReads(b *testing.B, snapshots bool) {
	// The eager variant uses the eager-destruct configuration, exactly as
	// the paper's non-snapshot "DRC" does, so the comparison isolates the
	// deferred-increment mechanism.
	d := core.NewDomain[a2node](core.Config[a2node]{MaxProcs: 64, EagerDestruct: !snapshots})
	setup := d.Attach()
	var cell core.AtomicRcPtr
	setup.StoreMove(&cell, setup.NewRc(func(n *a2node) { n.V = 7 }))
	b.RunParallel(func(pb *testing.PB) {
		t := d.Attach()
		defer t.Detach()
		for pb.Next() {
			if snapshots {
				s := t.GetSnapshot(&cell)
				_ = t.DerefSnapshot(s).V
				t.ReleaseSnapshot(&s)
			} else {
				p := t.Load(&cell)
				_ = t.Deref(p).V
				t.Release(p)
			}
		}
	})
	b.StopTimer()
	setup.StoreMove(&cell, core.NilRcPtr)
	setup.Flush()
	setup.Detach()
}

func BenchmarkAblationSnapshotReads(b *testing.B) { benchmarkReads(b, true) }
func BenchmarkAblationEagerReads(b *testing.B)    { benchmarkReads(b, false) }

// --- Ablation A3: eject threshold / deferral bound --------------------------

func BenchmarkAblationRetireEject(b *testing.B) {
	d := acqret.New(8)
	p := d.Register()
	defer d.Unregister(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Retire(p, uint64(i)|1)
		d.Eject(p)
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Deferred()), "deferred")
	for {
		if out := d.EjectAllLocal(p); len(out) == 0 {
			break
		}
	}
}

// BenchmarkAblationEjectThreshold sweeps the scan-threshold multiplier:
// larger thresholds amortize scans over more retires (cheaper pairs) at
// the cost of proportionally more deferred memory - the tunable constant
// inside Theorem 1's O(P²) bound.
func BenchmarkAblationEjectThreshold(b *testing.B) {
	for _, mult := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("mult=%d", mult), func(b *testing.B) {
			d := acqret.New(8, acqret.WithScanThreshold(mult))
			p := d.Register()
			defer d.Unregister(p)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Retire(p, uint64(i)|1)
				d.Eject(p)
			}
			b.StopTimer()
			b.ReportMetric(float64(d.Deferred()), "deferred")
			for {
				if out := d.EjectAllLocal(p); len(out) == 0 {
					break
				}
			}
		})
	}
}
