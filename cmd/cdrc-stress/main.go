// Command cdrc-stress soak-tests the library's safety invariants: it runs
// randomized concurrent workloads over every structure and scheme
// configuration with arena use-after-free checking enabled, verifying leak
// freedom at every quiescent point. Any use-after-free, double free,
// negative reference count, or leak panics with a diagnostic.
//
// Usage:
//
//	cdrc-stress -duration 30s -workers 8
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"cdrc/internal/ds"
	"cdrc/internal/ds/rcds"
	"cdrc/internal/rcscheme"
	"cdrc/internal/rcscheme/drcadapt"
	"cdrc/internal/rcscheme/herlihyrc"
	"cdrc/internal/rcscheme/lockrc"
	"cdrc/internal/rcscheme/orcgc"
	"cdrc/internal/rcscheme/splitrc"
)

type debuggable interface{ EnableDebugChecks() }

func stressScheme(name string, s rcscheme.StackScheme, workers int, dur time.Duration) error {
	if d, ok := s.(debuggable); ok {
		d.EnableDebugChecks()
	}
	s.Setup(8)
	s.SetupStacks(4, [][]uint64{{1, 2}, {3}, {4, 5, 6}, nil})

	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("%s: %v", name, r)
				}
			}()
			lt := s.Attach()
			st := s.AttachStack()
			defer lt.Detach()
			defer st.Detach()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					switch rng.Intn(6) {
					case 0:
						lt.Store(rng.Intn(8), rng.Uint64()|1)
					case 1:
						lt.Load(rng.Intn(8))
					case 2:
						st.Push(rng.Intn(4), rng.Uint64()%100+1)
					case 3:
						st.Pop(rng.Intn(4))
					default:
						st.Find(rng.Intn(4), rng.Uint64()%100+1)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	s.Teardown()
	if live := s.Live(); live != 0 {
		return fmt.Errorf("%s: %d objects leaked", name, live)
	}
	return nil
}

func stressSet(name string, set ds.Set, workers int, dur time.Duration) error {
	deadline := time.Now().Add(dur)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs <- fmt.Errorf("%s: %v", name, r)
				}
			}()
			th := set.Attach()
			defer th.Detach()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					k := rng.Uint64() % 512
					switch rng.Intn(4) {
					case 0:
						th.Insert(k)
					case 1:
						th.Delete(k)
					default:
						th.Contains(k)
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	// Quiescent drain.
	th := set.Attach()
	th.Detach()
	th = set.Attach()
	th.Detach()
	if un := set.Unreclaimed(); un != 0 {
		return fmt.Errorf("%s: %d nodes unreclaimed at quiescence", name, un)
	}
	return nil
}

func main() {
	var (
		duration = flag.Duration("duration", 10*time.Second, "total soak time")
		workers  = flag.Int("workers", 8, "concurrent workers per configuration")
	)
	flag.Parse()

	// Each worker holds two attachments (cells + stacks) in single-registry
	// schemes.
	procs := 2**workers + 4
	schemes := []struct {
		name string
		make func() rcscheme.StackScheme
	}{
		{"lockrc", func() rcscheme.StackScheme { return lockrc.New(procs) }},
		{"splitrc/folly", func() rcscheme.StackScheme { return splitrc.NewFolly(procs) }},
		{"splitrc/just::thread", func() rcscheme.StackScheme { return splitrc.NewJustThread(procs) }},
		{"herlihy/classic", func() rcscheme.StackScheme { return herlihyrc.NewClassic(procs) }},
		{"herlihy/optimized", func() rcscheme.StackScheme { return herlihyrc.NewOptimized(procs) }},
		{"orcgc", func() rcscheme.StackScheme { return orcgc.New(procs) }},
		{"drc", func() rcscheme.StackScheme { return drcadapt.New(procs) }},
		{"drc/snapshots", func() rcscheme.StackScheme { return drcadapt.NewSnapshots(procs) }},
	}
	sets := []struct {
		name string
		make func() ds.Set
	}{
		{"rcds/list", func() ds.Set { return rcds.NewList(procs, true) }},
		{"rcds/hash", func() ds.Set { return rcds.NewHashTable(256, procs, true) }},
		{"rcds/bst", func() ds.Set { return rcds.NewBST(procs, true) }},
	}

	total := len(schemes) + len(sets)
	per := *duration / time.Duration(total)
	fmt.Printf("soaking %d configurations, %v each, %d workers\n", total, per.Round(time.Millisecond), *workers)

	failed := false
	for _, c := range schemes {
		start := time.Now()
		err := stressScheme(c.name, c.make(), *workers, per)
		status := "ok"
		if err != nil {
			status = err.Error()
			failed = true
		}
		fmt.Printf("  %-22s %8s  %s\n", c.name, time.Since(start).Round(time.Millisecond), status)
	}
	for _, c := range sets {
		start := time.Now()
		err := stressSet(c.name, c.make(), *workers, per)
		status := "ok"
		if err != nil {
			status = err.Error()
			failed = true
		}
		fmt.Printf("  %-22s %8s  %s\n", c.name, time.Since(start).Round(time.Millisecond), status)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all configurations clean: no UAF, no double free, no leaks")
}
