// Command cdrc-stress soak-tests the library's safety invariants: it runs
// randomized concurrent workloads over every structure and scheme
// configuration with arena use-after-free checking enabled, verifying leak
// freedom at every quiescent point. Any use-after-free, double free,
// negative reference count, or leak panics with a diagnostic.
//
// With -chaos it additionally installs the internal/chaos fault injector:
// deterministic stalls at the paper's race windows, forced allocation
// failures, free-list shuffles, and - for configurations that support
// abandonment - simulated thread crashes, where a worker dies mid-workload
// without detaching and survivors must adopt its processor state.
//
// Usage:
//
//	cdrc-stress -duration 30s -workers 8
//	cdrc-stress -duration 10s -chaos -chaos-seed 1 -crash-workers 2
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cdrc/internal/chaos"
	"cdrc/internal/ds"
	"cdrc/internal/ds/rcds"
	"cdrc/internal/obs"
	"cdrc/internal/rcscheme"
	"cdrc/internal/rcscheme/drcadapt"
	"cdrc/internal/rcscheme/herlihyrc"
	"cdrc/internal/rcscheme/lockrc"
	"cdrc/internal/rcscheme/orcgc"
	"cdrc/internal/rcscheme/splitrc"
)

type debuggable interface{ EnableDebugChecks() }

// chaosOpBoundary is the harness-level crash point: it sits between
// workload operations, where a worker holds no references at all, so a
// crash there is recoverable for any scheme that implements
// rcscheme.Crasher.
var chaosOpBoundary = chaos.New("stress.op-boundary")

// chaosSpec carries the -chaos configuration through the harness.
type chaosSpec struct {
	enabled bool
	seed    uint64
	budget  int // simulated crashes per configuration
}

// seedFor derives a per-configuration seed so every configuration gets an
// independent but reproducible schedule from one -chaos-seed.
func (cs chaosSpec) seedFor(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return cs.seed ^ h.Sum64()
}

// faults is the injection schedule. Stall faults run everywhere; forced
// allocation failures exercise the TryAlloc backpressure path; crashes are
// confined to the two crash-safe points. The mid-operation crash point
// (core.snapshot.acquired) is enabled only for configurations whose
// operations hold no counted references across GetSnapshot (see the
// "Fault model" section of DESIGN.md); elsewhere it stalls.
func (cs chaosSpec) faults(midOpCrash bool) map[string]chaos.Fault {
	f := map[string]chaos.Fault{
		"stress.op-boundary": {Prob: 0.0002, Crash: true},
		"arena.alloc":        {Prob: 0.002, Fail: true},
		"arena.free":         {Prob: 0.001, Yields: 1},
		"arena.refill":       {Every: 5},
		"acqret.acquire.between-read-and-announce":     {Prob: 0.001, Yields: 2},
		"acqret.acquire.between-announce-and-validate": {Prob: 0.001, Yields: 2},
		"acqret.retire": {Prob: 0.001, Yields: 1},
		"core.load.between-acquire-and-increment": {Prob: 0.001, Yields: 2},
		"core.decrement-before-destruct":          {Prob: 0.001, Yields: 2},
	}
	if midOpCrash {
		f["core.snapshot.acquired"] = chaos.Fault{Prob: 0.0005, Crash: true}
	} else {
		f["core.snapshot.acquired"] = chaos.Fault{Prob: 0.001, Yields: 1}
	}
	return f
}

func (cs chaosSpec) enable(name string, midOpCrash bool) {
	if !cs.enabled {
		return
	}
	chaos.Enable(chaos.Config{
		Seed:        cs.seedFor(name),
		CrashBudget: cs.budget,
		Faults:      cs.faults(midOpCrash),
	})
}

// obsSpec carries the -obs configuration through the harness.
type obsSpec struct {
	enabled  bool
	interval time.Duration
}

// workerOps is one worker's operation count plus its crash checkpoint,
// padded so neighboring workers never share a cache line.
type workerOps struct {
	running atomic.Int64 // completed operations (written by the worker only)
	frozen  atomic.Int64 // last periodic sample (written by the sampler only)
	dead    atomic.Bool
	_       [40]byte
}

// opsTracker counts completed operations per worker and periodically
// checkpoints them. The final summary charges a crashed worker its last
// checkpoint, not its running counter: operations completed after the
// last sample died with the worker (their effects were only adopted as
// garbage, never reported), so reading the running counter post-mortem
// would double-count work the dead worker had already reported losing.
type opsTracker struct {
	ws   []workerOps
	stop chan struct{}
	done chan struct{}
}

func newOpsTracker(workers int, interval time.Duration) *opsTracker {
	t := &opsTracker{
		ws:   make([]workerOps, workers),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(t.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.sample()
			}
		}
	}()
	return t
}

func (t *opsTracker) sample() {
	for i := range t.ws {
		if w := &t.ws[i]; !w.dead.Load() {
			w.frozen.Store(w.running.Load())
		}
	}
}

// note records one completed operation by worker w.
func (t *opsTracker) note(w int) { t.ws[w].running.Add(1) }

// crash marks worker w dead; its count freezes at the last checkpoint.
func (t *opsTracker) crash(w int) { t.ws[w].dead.Store(true) }

func (t *opsTracker) close() { close(t.stop); <-t.done }

// total sums live workers' running counters and dead workers' checkpoints.
func (t *opsTracker) total() int64 {
	var sum int64
	for i := range t.ws {
		w := &t.ws[i]
		if w.dead.Load() {
			sum += w.frozen.Load()
		} else {
			sum += w.running.Load()
		}
	}
	return sum
}

// startObsReporter prints a metrics report every interval until stopped.
func startObsReporter(name string, spec obsSpec) (stop func()) {
	if !spec.enabled {
		return func() {}
	}
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		tick := time.NewTicker(spec.interval)
		defer tick.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-tick.C:
				fmt.Printf("--- obs %s ---\n%s", name, obs.Snapshot().Text())
			}
		}
	}()
	return func() { close(stopCh); <-doneCh }
}

// reconcileObs checks the quiescence accounting identities after a clean
// teardown. wantAllocFree holds only for scheme configurations (Teardown
// drops every object); sets keep their contents, so only the deferred-
// decrement identities apply there.
func reconcileObs(name string, wantAllocFree bool) error {
	if !obs.Enabled() {
		return nil
	}
	r := obs.Snapshot()
	if wantAllocFree {
		if a, f := r.Counter("arena.alloc"), r.Counter("arena.free"); a != f {
			return fmt.Errorf("%s: obs reconcile: arena.alloc=%d != arena.free=%d", name, a, f)
		}
	}
	if re, ej := r.Counter("acqret.retire"), r.Counter("acqret.eject"); re != ej {
		return fmt.Errorf("%s: obs reconcile: acqret.retire=%d != acqret.eject=%d", name, re, ej)
	}
	if d, ap := r.Counter("core.decr.deferred"), r.Counter("core.decr.applied"); d != ap {
		return fmt.Errorf("%s: obs reconcile: core.decr.deferred=%d != core.decr.applied=%d", name, d, ap)
	}
	return nil
}

// firstError keeps the first worker failure, in occurrence order. The old
// harness drained a channel after the fact and reported an arbitrary
// worker's panic; ordering matters when one failure cascades into others.
type firstError struct {
	mu  sync.Mutex
	err error
}

func (f *firstError) set(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
	}
	f.mu.Unlock()
}

func (f *firstError) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

type strayReleaser interface{ ReleaseStraySnapshots() }

// releaseStrays clears any announcement slots a panicking worker left
// behind, so the subsequent Detach does not trip the live-snapshot check.
func releaseStrays(th any) {
	if sr, ok := th.(strayReleaser); ok {
		sr.ReleaseStraySnapshots()
	}
}

// safeDetach detaches under its own recover so that a cleanup failure is
// reported rather than masking (or re-panicking over) the original error.
func safeDetach(name string, th interface{ Detach() }, fe *firstError) {
	defer func() {
		if r := recover(); r != nil {
			fe.set(fmt.Errorf("%s: detach after failure: %v", name, r))
		}
	}()
	th.Detach()
}

func stressScheme(name string, s rcscheme.StackScheme, workers int, dur time.Duration, cs chaosSpec, ob obsSpec, midOpCrash bool) (int64, int64, error) {
	if d, ok := s.(debuggable); ok {
		d.EnableDebugChecks()
	}
	s.Setup(8)
	s.SetupStacks(4, [][]uint64{{1, 2}, {3}, {4, 5, 6}, nil})
	cs.enable(name, midOpCrash)
	ops := newOpsTracker(workers, ob.interval)
	stopReport := startObsReporter(name, ob)

	deadline := time.Now().Add(dur)
	var (
		wg sync.WaitGroup
		fe firstError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, seed int64) {
			defer wg.Done()
			lt := s.Attach()
			st := s.AttachStack()
			lc, okL := lt.(rcscheme.Crasher)
			sc, okS := st.(rcscheme.Crasher)
			crashable := okL && okS
			defer func() {
				r := recover()
				if r == nil {
					safeDetach(name, lt, &fe)
					safeDetach(name, st, &fe)
					return
				}
				if _, isCrash := r.(chaos.CrashSignal); isCrash && crashable {
					// Simulated crash: no Detach, no cleanup. The dead
					// worker's announcement slots, retired lists, and
					// arena shards stay behind for survivors to adopt.
					// Its op count freezes at the last checkpoint.
					ops.crash(id)
					lc.Abandon()
					sc.Abandon()
					return
				}
				fe.set(fmt.Errorf("%s: worker panic: %v\n%s", name, r, debug.Stack()))
				releaseStrays(lt)
				releaseStrays(st)
				safeDetach(name, lt, &fe)
				safeDetach(name, st, &fe)
			}()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					if crashable {
						chaosOpBoundary.Fire()
					}
					switch rng.Intn(6) {
					case 0:
						lt.Store(rng.Intn(8), rng.Uint64()|1)
					case 1:
						lt.Load(rng.Intn(8))
					case 2:
						st.Push(rng.Intn(4), rng.Uint64()%100+1)
					case 3:
						st.Pop(rng.Intn(4))
					default:
						st.Find(rng.Intn(4), rng.Uint64()%100+1)
					}
					ops.note(id)
				}
			}
		}(w, int64(w+1))
	}
	wg.Wait()
	ops.close()
	stopReport()
	crashes := chaos.Crashes()
	chaos.Disable() // quiesce injection before teardown
	if err := fe.get(); err != nil {
		return crashes, ops.total(), err
	}
	s.Teardown() // the teardown thread's flushes adopt any crashed workers
	if live := s.Live(); live != 0 {
		return crashes, ops.total(), fmt.Errorf("%s: %d objects leaked", name, live)
	}
	return crashes, ops.total(), reconcileObs(name, true)
}

func stressSet(name string, set ds.Set, workers int, dur time.Duration, cs chaosSpec, ob obsSpec, midOpCrash bool) (int64, int64, error) {
	cs.enable(name, midOpCrash)
	ops := newOpsTracker(workers, ob.interval)
	stopReport := startObsReporter(name, ob)
	deadline := time.Now().Add(dur)
	var (
		wg sync.WaitGroup
		fe firstError
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int, seed int64) {
			defer wg.Done()
			th := set.Attach()
			cr, crashable := th.(rcscheme.Crasher)
			defer func() {
				r := recover()
				if r == nil {
					safeDetach(name, th, &fe)
					return
				}
				if _, isCrash := r.(chaos.CrashSignal); isCrash && crashable {
					ops.crash(id)
					cr.Abandon()
					return
				}
				fe.set(fmt.Errorf("%s: worker panic: %v", name, r))
				releaseStrays(th)
				safeDetach(name, th, &fe)
			}()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				for i := 0; i < 256; i++ {
					if crashable {
						chaosOpBoundary.Fire()
					}
					k := rng.Uint64() % 512
					switch rng.Intn(4) {
					case 0:
						th.Insert(k)
					case 1:
						th.Delete(k)
					default:
						th.Contains(k)
					}
					ops.note(id)
				}
			}
		}(w, int64(w+1))
	}
	wg.Wait()
	ops.close()
	stopReport()
	crashes := chaos.Crashes()
	chaos.Disable()
	if err := fe.get(); err != nil {
		return crashes, ops.total(), err
	}
	// Quiescent drain; the attach/detach rounds adopt crashed workers.
	th := set.Attach()
	th.Detach()
	th = set.Attach()
	th.Detach()
	if un := set.Unreclaimed(); un != 0 {
		return crashes, ops.total(), fmt.Errorf("%s: %d nodes unreclaimed at quiescence", name, un)
	}
	return crashes, ops.total(), reconcileObs(name, false)
}

func main() {
	var (
		duration    = flag.Duration("duration", 10*time.Second, "total soak time")
		workers     = flag.Int("workers", 8, "concurrent workers per configuration")
		chaosOn     = flag.Bool("chaos", false, "enable deterministic fault injection")
		seed        = flag.Uint64("chaos-seed", 1, "fault injection seed (same seed, same schedule)")
		crashers    = flag.Int("crash-workers", 2, "simulated thread crashes per configuration (with -chaos)")
		obsOn       = flag.Bool("obs", false, "enable internal/obs metrics and periodic reports")
		obsInterval = flag.Duration("obs-interval", 2*time.Second, "period between obs reports (and op-count checkpoints)")
	)
	flag.Parse()
	cs := chaosSpec{enabled: *chaosOn, seed: *seed, budget: *crashers}
	ob := obsSpec{enabled: *obsOn, interval: *obsInterval}
	if ob.enabled {
		obs.Enable()
	}

	// Each worker holds two attachments (cells + stacks) in single-registry
	// schemes.
	procs := 2**workers + 4
	schemes := []struct {
		name string
		make func() rcscheme.StackScheme
		// midOpCrash marks configurations whose operations hold no counted
		// references at the snapshot-acquired point, making mid-operation
		// crashes recoverable there.
		midOpCrash bool
	}{
		{"lockrc", func() rcscheme.StackScheme { return lockrc.New(procs) }, false},
		{"splitrc/folly", func() rcscheme.StackScheme { return splitrc.NewFolly(procs) }, false},
		{"splitrc/just::thread", func() rcscheme.StackScheme { return splitrc.NewJustThread(procs) }, false},
		{"herlihy/classic", func() rcscheme.StackScheme { return herlihyrc.NewClassic(procs) }, false},
		{"herlihy/optimized", func() rcscheme.StackScheme { return herlihyrc.NewOptimized(procs) }, false},
		{"orcgc", func() rcscheme.StackScheme { return orcgc.New(procs) }, false},
		{"drc", func() rcscheme.StackScheme { return drcadapt.New(procs) }, false},
		{"drc/snapshots", func() rcscheme.StackScheme { return drcadapt.NewSnapshots(procs) }, true},
	}
	sets := []struct {
		name       string
		make       func() ds.Set
		midOpCrash bool
	}{
		{"rcds/list", func() ds.Set { return rcds.NewList(procs, true) }, true},
		{"rcds/hash", func() ds.Set { return rcds.NewHashTable(256, procs, true) }, true},
		// BST operations hold counted references in locals, so it only
		// takes crashes at operation boundaries.
		{"rcds/bst", func() ds.Set { return rcds.NewBST(procs, true) }, false},
	}

	total := len(schemes) + len(sets)
	per := *duration / time.Duration(total)
	mode := ""
	if cs.enabled {
		mode = fmt.Sprintf(", chaos seed=%d crash-workers=%d", cs.seed, cs.budget)
	}
	fmt.Printf("soaking %d configurations, %v each, %d workers%s\n", total, per.Round(time.Millisecond), *workers, mode)

	report := func(name string, start time.Time, crashes, ops int64, err error) bool {
		status := "ok"
		if cs.enabled {
			status = fmt.Sprintf("ok (crashes=%d)", crashes)
		}
		if err != nil {
			status = err.Error()
		}
		fmt.Printf("  %-22s %8s  ops=%-10d %s\n", name, time.Since(start).Round(time.Millisecond), ops, status)
		return err != nil
	}

	failed := false
	for _, c := range schemes {
		obs.Reset() // per-configuration metric window
		start := time.Now()
		s := c.make()
		crashes, ops, err := stressScheme(c.name, s, *workers, per, cs, ob, c.midOpCrash)
		failed = report(c.name, start, crashes, ops, err) || failed
	}
	for _, c := range sets {
		obs.Reset()
		start := time.Now()
		crashes, ops, err := stressSet(c.name, c.make(), *workers, per, cs, ob, c.midOpCrash)
		failed = report(c.name, start, crashes, ops, err) || failed
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("all configurations clean: no UAF, no double free, no leaks")
}
