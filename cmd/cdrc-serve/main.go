// cdrc-serve runs the internal/server key→value store as a standalone
// process: a sharded collections.Map behind the line protocol described
// in internal/server/proto.go, with the worker pool sized against the
// pid registries and explicit -BUSY backpressure.
//
// Talk to it with cmd/cdrc-load, or by hand:
//
//	$ go run ./cmd/cdrc-serve -addr 127.0.0.1:7070 -obs &
//	$ printf 'PUT 1 100\nGET 1\nSTATS\n' | nc 127.0.0.1 7070
//
// SIGINT/SIGTERM trigger an orderly shutdown; the process exits non-zero
// if the storage engine fails to reach full reclamation (Live() != 0).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"cdrc/internal/obs"
	"cdrc/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		shards   = flag.Int("shards", 4, "map shards (rounded up to a power of two)")
		workers  = flag.Int("workers", 8, "worker pool size (threads attached to the store)")
		keys     = flag.Int("keys", 1<<16, "expected resident keys across all shards")
		arenaCap = flag.Uint64("arena-cap", 0, "per-shard arena slot cap (0 = unbounded; beyond it PUT replies -BUSY)")
		queue    = flag.Int("queue", 0, "per-shard request queue depth (0 = default)")
		pipe     = flag.Int("max-pipeline", 0, "per-connection pipeline window (0 = default 64)")
		flush    = flag.Int("flush-batch", 0, "max replies coalesced per flush (0 = pipeline window)")
		debug    = flag.Bool("debug-checks", false, "arm arena use-after-free panics")
		obsOn    = flag.Bool("obs", false, "enable observability (STATS returns live metrics)")
	)
	flag.Parse()

	if *obsOn {
		obs.Enable()
	}
	srv, err := server.New(server.Config{
		Addr:          *addr,
		Shards:        *shards,
		Workers:       *workers,
		ExpectedKeys:  *keys,
		ArenaCapacity: *arenaCap,
		QueueDepth:    *queue,
		MaxPipeline:   *pipe,
		FlushBatch:    *flush,
		DebugChecks:   *debug,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cdrc-serve: listening on %s (shards=%d workers=%d obs=%v)\n",
		srv.Addr(), *shards, *workers, *obsOn)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("cdrc-serve: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cdrc-serve: %v\n", err)
		os.Exit(1)
	}
	if *obsOn {
		fmt.Print(obs.Snapshot().Text())
	}
	fmt.Println("cdrc-serve: clean shutdown, all nodes reclaimed")
}
