// cdrc-serve runs the internal/server key→value store as a standalone
// process: a sharded collections.Map behind the line protocol described
// in internal/server/proto.go, with the worker pool sized against the
// pid registries and explicit -BUSY backpressure.
//
// Talk to it with cmd/cdrc-load, or by hand:
//
//	$ go run ./cmd/cdrc-serve -addr 127.0.0.1:7070 -obs &
//	$ printf 'PUT 1 100\nGET 1\nSTATS\n' | nc 127.0.0.1 7070
//
// SIGINT/SIGTERM trigger an orderly shutdown: in-flight pipelined
// requests are drained (each claimed ring entry gets its reply or a
// -BUSY before the socket closes) and, in cluster mode, the replication
// logs are replayed to the replicas. The process exits non-zero if the
// storage engine fails to reach full reclamation (Live() != 0).
//
// Cache mode (DESIGN.md §11): -cache turns the store into a TTL cache —
// SETEX/GETEX/EXPIRE/CACHESTATS come online, PUT means SETEX-forever,
// and when -arena-cap is hit writes evict instead of replying -BUSY:
//
//	$ go run ./cmd/cdrc-serve -cache -arena-cap 4096 &
//	$ printf 'SETEX 1 5000 100\nGETEX 1 5000\nCACHESTATS\n' | nc 127.0.0.1 7070
//
// Cluster mode (DESIGN.md §9): start one process per node with the same
// -peers list and a distinct -node-id; each node's -addr must match its
// own entry in -peers. For example, a two-node cluster:
//
//	$ go run ./cmd/cdrc-serve -addr 127.0.0.1:7070 -peers 127.0.0.1:7070,127.0.0.1:7071 -node-id 0 &
//	$ go run ./cmd/cdrc-serve -addr 127.0.0.1:7071 -peers 127.0.0.1:7070,127.0.0.1:7071 -node-id 1 &
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cdrc/internal/obs"
	"cdrc/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "TCP listen address")
		shards   = flag.Int("shards", 4, "map shards (rounded up to a power of two)")
		workers  = flag.Int("workers", 8, "worker pool size (threads attached to the store)")
		keys     = flag.Int("keys", 1<<16, "expected resident keys across all shards")
		arenaCap = flag.Uint64("arena-cap", 0, "per-shard arena slot cap (0 = unbounded; beyond it PUT replies -BUSY)")
		queue    = flag.Int("queue", 0, "per-shard request queue depth (0 = default)")
		pipe     = flag.Int("max-pipeline", 0, "per-connection pipeline window (0 = default 64)")
		flush    = flag.Int("flush-batch", 0, "max replies coalesced per flush (0 = pipeline window)")
		debug    = flag.Bool("debug-checks", false, "arm arena use-after-free panics")
		obsOn    = flag.Bool("obs", false, "enable observability (STATS returns live metrics)")
		peers    = flag.String("peers", "", "comma-separated node addresses in node-id order (enables replicated cluster mode)")
		nodeID   = flag.Int("node-id", 0, "this node's index into -peers")
		idle     = flag.Duration("idle-timeout", 0, "close connections idle longer than this (0 = never)")
		cacheOn  = flag.Bool("cache", false, "cache mode: SETEX/GETEX/EXPIRE with TTLs and eviction instead of -BUSY when -arena-cap is hit (DESIGN.md §11)")
		sweep    = flag.Duration("sweep-interval", 0, "cache mode: background expiry sweep period (0 = default 5ms, negative = no sweeper)")
	)
	flag.Parse()

	if *obsOn {
		obs.Enable()
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
	}
	srv, err := server.New(server.Config{
		Addr:               *addr,
		Shards:             *shards,
		Workers:            *workers,
		ExpectedKeys:       *keys,
		ArenaCapacity:      *arenaCap,
		QueueDepth:         *queue,
		MaxPipeline:        *pipe,
		FlushBatch:         *flush,
		DebugChecks:        *debug,
		Peers:              peerList,
		NodeID:             *nodeID,
		IdleTimeout:        *idle,
		CacheMode:          *cacheOn,
		CacheSweepInterval: *sweep,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(peerList) > 0 {
		primaries, replicas := 0, 0
		for sh := 0; sh < *shards; sh++ {
			switch *nodeID {
			case server.PrimaryNode(sh, len(peerList)):
				primaries++
			case server.ReplicaNode(sh, len(peerList)):
				replicas++
			}
		}
		fmt.Printf("cdrc-serve: node %d/%d on %s (primary for %d shards, replica for %d)\n",
			*nodeID, len(peerList), srv.Addr(), primaries, replicas)
	} else if *cacheOn {
		fmt.Printf("cdrc-serve: cache mode on %s (shards=%d workers=%d arena-cap=%d obs=%v)\n",
			srv.Addr(), *shards, *workers, *arenaCap, *obsOn)
	} else {
		fmt.Printf("cdrc-serve: listening on %s (shards=%d workers=%d obs=%v)\n",
			srv.Addr(), *shards, *workers, *obsOn)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("cdrc-serve: shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "cdrc-serve: %v\n", err)
		os.Exit(1)
	}
	if *obsOn {
		fmt.Print(obs.Snapshot().Text())
	}
	fmt.Println("cdrc-serve: clean shutdown, all nodes reclaimed")
}
