// Command cdrc-bench regenerates the paper's evaluation figures.
//
// Usage:
//
//	cdrc-bench -fig 6a -threads 1,2,4,8 -duration 500ms
//	cdrc-bench -all -out results
//
// Each figure prints CSV rows (figure, scheme, threads, Mops/s, average
// allocated objects, unreclaimed nodes, figure-specific extra). See
// EXPERIMENTS.md for how each figure maps onto the paper's plots and how
// the shapes compare.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"cdrc/internal/bench"
	"cdrc/internal/obs"
)

// writeObsSidecar snapshots the per-figure metric window into
// <dir>/fig<ID>.obs.json next to the figure's CSV.
func writeObsSidecar(dir, figID string) error {
	data, err := obs.Snapshot().JSON()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "fig"+figID+".obs.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fig %s obs -> %s\n", figID, path)
	return nil
}

func main() {
	var (
		figID    = flag.String("fig", "", "figure to run (6a..6h, 7a..7f); empty with -all runs everything")
		all      = flag.Bool("all", false, "run every figure")
		threads  = flag.String("threads", "1,2,4,8", "comma-separated worker counts")
		duration = flag.Duration("duration", 300*time.Millisecond, "measured duration per data point")
		outDir   = flag.String("out", "", "directory for per-figure CSV files (default: stdout)")
		format   = flag.String("format", "csv", "output format: csv or table")
		list     = flag.Bool("list", false, "list available figures and exit")

		cellsLarge = flag.Int("cells-large", 1_000_000, "N for the uncontended load/store benchmark (paper: 10,000,000)")
		listSize   = flag.Int("list-size", 1000, "list-set size (paper: 1000)")
		hashSize   = flag.Int("hash-size", 10_000, "hash-set size (paper: 100,000)")
		bstSize    = flag.Int("bst-size", 10_000, "tree-set size (paper: 100,000)")
		bstLarge   = flag.Int("bst-large", 1_000_000, "large tree-set size (paper: 100,000,000)")
		memThreads = flag.Int("mem-threads", 8, "fixed thread count for Fig. 6h (paper: 128)")
		obsOut     = flag.String("obs-out", "", "directory for per-figure obs metric sidecars (fig<ID>.obs.json); enables internal/obs")
	)
	flag.Parse()
	if *obsOut != "" {
		if err := os.MkdirAll(*obsOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cdrc-bench: %v\n", err)
			os.Exit(1)
		}
		obs.Enable()
	}

	if *list {
		for _, f := range bench.Figures() {
			fmt.Printf("%-4s %s\n", f.ID, f.Title)
		}
		return
	}

	o := bench.DefaultOptions()
	o.Duration = *duration
	o.LoadStoreCellsLarge = *cellsLarge
	o.ListSize = *listSize
	o.HashSize = *hashSize
	o.BSTSize = *bstSize
	o.BSTLargeSize = *bstLarge
	o.MemThreads = *memThreads
	o.Threads = nil
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "cdrc-bench: bad thread count %q\n", part)
			os.Exit(2)
		}
		o.Threads = append(o.Threads, n)
	}

	var figs []bench.Figure
	switch {
	case *all:
		figs = bench.Figures()
	case *figID != "":
		f, ok := bench.FigureByID(*figID)
		if !ok {
			fmt.Fprintf(os.Stderr, "cdrc-bench: unknown figure %q\n", *figID)
			os.Exit(2)
		}
		figs = []bench.Figure{f}
	default:
		fmt.Fprintln(os.Stderr, "cdrc-bench: pass -fig <id> or -all")
		flag.Usage()
		os.Exit(2)
	}

	for _, f := range figs {
		out := os.Stdout
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cdrc-bench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "fig"+f.ID+".csv")
			file, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cdrc-bench: %v\n", err)
				os.Exit(1)
			}
			out = file
			fmt.Fprintf(os.Stderr, "fig %s (%s) -> %s\n", f.ID, f.Title, path)
		} else {
			fmt.Fprintf(os.Stderr, "# fig %s: %s\n", f.ID, f.Title)
		}
		if *obsOut != "" {
			obs.Reset() // per-figure metric window
		}
		if *format == "table" {
			var tbl bench.Table
			f.Run(o, tbl.Add)
			tbl.Write(out)
		} else {
			bench.WriteCSVHeader(out)
			f.Run(o, func(p bench.Point) {
				bench.WriteCSV(out, p)
			})
		}
		if out != os.Stdout {
			out.Close()
		}
		if *obsOut != "" {
			if err := writeObsSidecar(*obsOut, f.ID); err != nil {
				fmt.Fprintf(os.Stderr, "cdrc-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
