package main

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"cdrc/internal/obs"
	"cdrc/internal/vals"
)

// Value sizing (-val-size). The spec is either a fixed byte count ("64")
// or an inclusive range ("64:1024") drawn uniformly per write. The floor
// is 8 bytes: every value leads with its 8-byte integrity tag
// (valTag(key) | sequence), so a GET can detect torn, stale-freed, or
// misdirected values whatever its length. Every generated value is also
// counted per arena size class (load.val.class.<bytes>, plus
// load.val.class.chain for overflow-chained values), so a sweep across
// -val-size settings shows exactly which classes the traffic hit.

// obsValClass counts values generated per size class, indexed like
// vals.ClassOf (the last slot is the overflow chain).
var obsValClass = func() []*obs.Counter {
	cs := make([]*obs.Counter, vals.NumClasses+1)
	for c := 0; c < vals.NumClasses; c++ {
		cs[c] = obs.NewCounter(fmt.Sprintf("load.val.class.%d", vals.ClassSize(c)))
	}
	cs[vals.NumClasses] = obs.NewCounter("load.val.class.chain")
	return cs
}()

// valSizer draws per-write value lengths from the parsed spec.
type valSizer struct {
	min, max int
}

// parseValSize parses "N" or "min:max" (bytes).
func parseValSize(spec string) (valSizer, error) {
	lo, hi, ranged := strings.Cut(spec, ":")
	vmin, err := strconv.Atoi(lo)
	if err != nil {
		return valSizer{}, fmt.Errorf("bad -val-size %q: %v", spec, err)
	}
	vmax := vmin
	if ranged {
		if vmax, err = strconv.Atoi(hi); err != nil {
			return valSizer{}, fmt.Errorf("bad -val-size %q: %v", spec, err)
		}
	}
	if vmin < 8 {
		vmin = 8 // room for the integrity tag
	}
	if vmax < vmin {
		return valSizer{}, fmt.Errorf("bad -val-size %q: max below min", spec)
	}
	if vmax > vals.MaxLen {
		return valSizer{}, fmt.Errorf("bad -val-size %q: above the %d-byte value cap", spec, vals.MaxLen)
	}
	return valSizer{min: vmin, max: vmax}, nil
}

// draw picks this write's length; r is any uniform source (rand.Intn
// signature) so each connection can use its own seeded rng.
func (vs valSizer) draw(intn func(int) int) int {
	if vs.max == vs.min {
		return vs.min
	}
	return vs.min + intn(vs.max-vs.min+1)
}

// fillVal renders an n-byte value for key into buf (reusing capacity):
// the leading 8 bytes carry valTag(key)|seq, the tail is a deterministic
// key-derived pad. The value's size class is counted.
func fillVal(buf []byte, key uint64, seq, n int) []byte {
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	binary.LittleEndian.PutUint64(buf, valTag(key)|uint64(seq&0xFFFF))
	for i := 8; i < n; i++ {
		buf[i] = byte(key) ^ byte(i)
	}
	obsValClass[vals.ClassOf(n)].Inc(0)
	return buf
}

// valOK verifies a fetched value's integrity tag.
func valOK(v []byte, key uint64) bool {
	if len(v) < 8 {
		return false
	}
	return binary.LittleEndian.Uint64(v)&^0xFFFF == valTag(key)
}

// vU64 decodes a value's leading word (0 for short values) — used by the
// cluster soak, whose acked-state record tracks the tag word.
func vU64(v []byte) uint64 {
	if len(v) < 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}

// u64v renders a bare tag word as an 8-byte value.
func u64v(x uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	return b[:]
}

// reportValClasses prints the non-zero per-class hit counters.
func reportValClasses(r *obs.Report) {
	var parts []string
	for c := 0; c < vals.NumClasses; c++ {
		if n := r.Counter(fmt.Sprintf("load.val.class.%d", vals.ClassSize(c))); n > 0 {
			parts = append(parts, fmt.Sprintf("%d:%d", vals.ClassSize(c), n))
		}
	}
	if n := r.Counter("load.val.class.chain"); n > 0 {
		parts = append(parts, fmt.Sprintf("chain:%d", n))
	}
	if len(parts) > 0 {
		fmt.Printf("cdrc-load: value size-class hits (bytes:count): %s\n", strings.Join(parts, " "))
	}
}
