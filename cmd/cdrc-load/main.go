// cdrc-load is the load generator and correctness gate for the
// internal/server key→value service. It drives a read/write/delete mix
// with Zipf-distributed keys over the wire protocol, measures per-op
// latency through obs histograms (p50/p99 via Report.Quantile), and -
// because every request line receives exactly one classified reply -
// checks conservation at the end:
//
//	client sends == OK replies + BUSY sheds        (per client)
//	client sends == server.reply + server.busy.{queue,lease}   (in-process mode)
//	client BUSYs == server.busy.{queue,arena,crash,lease}      (in-process mode)
//
// plus value integrity (GET must return a value tagged for its key) and,
// in in-process mode, full reclamation at Close (Live() == 0). Any
// violation exits non-zero, which is how scripts/check.sh uses it as a
// loopback soak - once plain and once with -chaos -crash-workers, where
// simulated worker crashes exercise the abandonment/adoption path under
// live traffic.
//
// With -addr it targets an already-running cdrc-serve instead (the
// server-side identities are then skipped; the process-local obs
// counters cannot see a remote server).
//
// With -cluster N it runs an N-node in-process loopback cluster
// (DESIGN.md §9) instead of a single server, drives it through
// ClusterClients that retry every write until acked, and — with -chaos
// -kill-nodes — lets the chaos injector fail-stop whole nodes mid-load.
// The gates become the replicated invariants: zero lost acked writes
// (every key's last acked state is readable after failover), the
// replication conservation identity repl.enq == repl.ack + repl.lost,
// and Live() == 0 on every node, killed ones included.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cdrc/internal/chaos"
	"cdrc/internal/obs"
	"cdrc/internal/server"
)

var (
	obsGetNs      = obs.NewHistogram("load.get.ns")
	obsPutNs      = obs.NewHistogram("load.put.ns")
	obsDelNs      = obs.NewHistogram("load.del.ns")
	obsScanNs     = obs.NewHistogram("load.scan.ns")
	obsSnapScanNs = obs.NewHistogram("load.snapscan.ns")
	obsMGetNs     = obs.NewHistogram("load.mget.ns")
	obsBatchNs    = obs.NewHistogram("load.batch.ns")
)

// tally accumulates one connection's classified outcomes.
type tally struct {
	sends     int64
	oks       int64
	busys     int64
	errs      int64
	integrity int64
}

func (t *tally) add(o *tally) {
	t.sends += o.sends
	t.oks += o.oks
	t.busys += o.busys
	t.errs += o.errs
	t.integrity += o.integrity
}

// valTag derives the stable upper bits every PUT to a key carries, so a
// GET can detect torn, stale-freed, or misdirected values regardless of
// which client wrote last (splitmix64 of the key, low 16 bits cleared
// for a per-write sequence).
func valTag(key uint64) uint64 {
	x := key ^ 0xC0DEC0DEC0DEC0DE
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x &^ 0xFFFF
}

func main() {
	var (
		addr     = flag.String("addr", "", "target server address (empty = run an in-process server)")
		duration = flag.Duration("duration", 5*time.Second, "load duration")
		conns    = flag.Int("conns", 4, "client connections")
		keys     = flag.Int("keys", 4096, "key space size")
		zipfS    = flag.Float64("zipf-s", 1.1, "Zipf s parameter (>1)")
		zipfV    = flag.Float64("zipf-v", 1.0, "Zipf v parameter (>=1)")
		reads    = flag.Float64("reads", 0.70, "GET fraction")
		puts     = flag.Float64("puts", 0.20, "PUT fraction (remainder is DEL)")
		scanEvry = flag.Int("scan-every", 200, "issue SCAN 16 every Nth op per connection (0 = never)")
		scanHvy  = flag.Bool("scan-heavy", false, "snapshot-read mix: the scan-every boundary issues SNAPSCAN 512 plus a 4-key MGET instead of SCAN 16")
		pipeline = flag.Int("pipeline", 1, "requests in flight per connection (1 = lock-step round trips)")
		valSize  = flag.String("val-size", "8", "value size in bytes: fixed (\"64\") or uniform range (\"64:1024\"); floor 8")
		jsonOut  = flag.String("json-out", "", "write a machine-readable run summary (throughput + latency quantiles) to this file")

		shards   = flag.Int("shards", 4, "in-process server: shards")
		workers  = flag.Int("workers", 4, "in-process server: worker pool size")
		arenaCap = flag.Uint64("arena-cap", 0, "in-process server: per-shard arena slot cap")
		queue    = flag.Int("queue", 0, "in-process server: request queue depth (0 = default)")

		chaosOn   = flag.Bool("chaos", false, "in-process server: enable deterministic fault injection")
		chaosSeed = flag.Uint64("chaos-seed", 1, "chaos seed")
		crashWk   = flag.Int("crash-workers", 0, "chaos crash budget (simulated worker crashes)")

		cluster   = flag.Int("cluster", 0, "run an N-node in-process replicated cluster (0 = single server)")
		killNodes = flag.Int("kill-nodes", 0, "chaos kill budget (whole fail-stop nodes; needs -chaos and -cluster)")

		cacheOn  = flag.Bool("cache", false, "cache scenario: Zipf cache-aside GETEX/SETEX with TTLs against a cache-mode server")
		cacheTTL = flag.Duration("ttl", 100*time.Millisecond, "cache scenario: per-key TTL")
		cacheWr  = flag.Float64("cache-writes", 0.25, "cache scenario: unconditional SETEX write fraction (the rest is GETEX, filling on miss)")
		minHit   = flag.Float64("min-hit-ratio", 0, "cache scenario: fail when the client-observed hit ratio lands below this (0 = report only)")
	)
	flag.Parse()

	obs.Enable()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "cdrc-load: FAIL: "+format+"\n", args...)
		os.Exit(1)
	}
	vs, err := parseValSize(*valSize)
	if err != nil {
		fail("%v", err)
	}

	if *cacheOn {
		if *cluster > 1 {
			fail("-cache is incompatible with -cluster (cache mode is single-node)")
		}
		runCache(fail, cacheParams{
			addr:      *addr,
			valSize:   vs,
			duration:  *duration,
			conns:     *conns,
			keys:      *keys,
			zipfS:     *zipfS,
			zipfV:     *zipfV,
			writes:    *cacheWr,
			ttl:       *cacheTTL,
			minHit:    *minHit,
			jsonOut:   *jsonOut,
			shards:    *shards,
			workers:   *workers,
			arenaCap:  *arenaCap,
			queue:     *queue,
			chaosOn:   *chaosOn,
			chaosSeed: *chaosSeed,
			crashWk:   *crashWk,
		})
		return
	}

	if *cluster > 1 {
		runCluster(fail, clusterParams{
			nodes:     *cluster,
			duration:  *duration,
			conns:     *conns,
			keys:      *keys,
			reads:     *reads,
			puts:      *puts,
			shards:    *shards,
			workers:   *workers,
			chaosOn:   *chaosOn,
			chaosSeed: *chaosSeed,
			crashWk:   *crashWk,
			killNodes: *killNodes,
		})
		return
	}

	target := *addr
	inproc := target == ""
	var srv *server.Server
	if inproc {
		if *chaosOn {
			chaos.Enable(chaos.Config{
				Seed:        *chaosSeed,
				CrashBudget: *crashWk,
				Faults: map[string]chaos.Fault{
					// Crash-safe points only: the worker op boundary (zero
					// refs held) and snapshot acquisition (map ops hold no
					// counted references across GetSnapshot).
					"server.worker.op":       {Prob: 0.0005, Crash: true},
					"core.snapshot.acquired": {Prob: 0.0002, Crash: true},
					"arena.alloc":            {Prob: 0.002, Fail: true},
					"arena.free":             {Prob: 0.001, Yields: 1},
					"acqret.retire":          {Prob: 0.001, Yields: 1},
					"core.load.between-acquire-and-increment": {Prob: 0.001, Yields: 2},
				},
			})
		}
		var err error
		srv, err = server.New(server.Config{
			Shards:        *shards,
			Workers:       *workers,
			MaxProcs:      *workers + *crashWk + 8,
			ExpectedKeys:  *keys,
			ArenaCapacity: *arenaCap,
			QueueDepth:    *queue,
			DebugChecks:   true,
		})
		if err != nil {
			fail("start server: %v", err)
		}
		target = srv.Addr()
	}

	fmt.Printf("cdrc-load: %v against %s (conns=%d keys=%d zipf=%.2f mix=%.0f/%.0f/%.0f pipeline=%d val-size=%s chaos=%v)\n",
		*duration, target, *conns, *keys, *zipfS,
		*reads*100, *puts*100, (1-*reads-*puts)*100, *pipeline, *valSize, *chaosOn)

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	var stop atomic.Bool
	tallies := make([]tally, *conns)
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tl := &tallies[id]
			cl, err := server.Dial(target)
			if err != nil {
				tl.errs++
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			zipf := rand.NewZipf(rng, *zipfS, *zipfV, uint64(*keys-1))
			classify := func(err error) bool {
				switch err {
				case nil:
					tl.oks++
					return true
				case server.ErrBusy:
					tl.busys++
					return true
				default:
					tl.errs++
					return false
				}
			}
			if *pipeline > 1 {
				// Pipelined mode: windows of `pipeline` requests sent in
				// one write, replies read in order. Latency is recorded
				// per batch round trip (load.batch.ns); conservation and
				// integrity are still checked per request.
				depth := *pipeline
				var b server.Batch
				var vbuf []byte
				results := make([]server.Result, 0, depth)
				keys := make([]uint64, 0, depth)
				kinds := make([]byte, 0, depth)
				for op := 0; !stop.Load() && time.Now().Before(deadline); {
					b.Reset()
					keys, kinds = keys[:0], kinds[:0]
					for j := 0; j < depth; j++ {
						k := zipf.Uint64()
						p := rng.Float64()
						switch {
						case p < *reads:
							b.Get(k)
							kinds = append(kinds, 'G')
						case p < *reads+*puts:
							vbuf = fillVal(vbuf, k, op+j, vs.draw(rng.Intn))
							b.Put(k, vbuf)
							kinds = append(kinds, 'P')
						default:
							b.Del(k)
							kinds = append(kinds, 'D')
						}
						keys = append(keys, k)
					}
					t0 := time.Now()
					var err error
					results, err = cl.DoBatch(&b, results[:0])
					obsBatchNs.Observe(uint64(time.Since(t0)))
					tl.sends += int64(len(results))
					if err != nil {
						tl.errs++
						return
					}
					for i, res := range results {
						if res.Busy {
							tl.busys++
							continue
						}
						tl.oks++
						if kinds[i] == 'G' && res.Found && !valOK(res.Bytes, keys[i]) {
							tl.integrity++
							return
						}
					}
					op += len(results)
					if *scanEvry > 0 && op%*scanEvry < depth {
						t0 := time.Now()
						if *scanHvy {
							_, err := cl.SnapScan(512)
							tl.sends++
							obsSnapScanNs.Observe(uint64(time.Since(t0)))
							if !classify(err) {
								return
							}
						} else {
							_, err := cl.Scan(16)
							tl.sends++
							obsScanNs.Observe(uint64(time.Since(t0)))
							if !classify(err) {
								return
							}
						}
					}
				}
				return
			}
			var vbuf []byte
			for op := 0; !stop.Load() && time.Now().Before(deadline); op++ {
				k := zipf.Uint64()
				p := rng.Float64()
				t0 := time.Now()
				switch {
				case *scanEvry > 0 && op%*scanEvry == *scanEvry-1 && *scanHvy:
					// Snapshot-read boundary: a wide SNAPSCAN that holds a
					// lease across every shard, then a 4-key MGET whose
					// values must each carry their own key's tag (a torn
					// snapshot that pairs key A with key B's slot shows up
					// as an integrity violation).
					_, err := cl.SnapScan(512)
					tl.sends++
					obsSnapScanNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
					mk := [4]uint64{zipf.Uint64(), zipf.Uint64(), zipf.Uint64(), zipf.Uint64()}
					t0 = time.Now()
					res, err := cl.MGet(mk[:]...)
					tl.sends++
					obsMGetNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
					if err == nil {
						for i, r := range res {
							if r.Found && !valOK(r.Bytes, mk[i]) {
								tl.integrity++
								return
							}
						}
					}
				case *scanEvry > 0 && op%*scanEvry == *scanEvry-1:
					_, err := cl.Scan(16)
					tl.sends++
					obsScanNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				case p < *reads:
					v, ok, err := cl.Get(k)
					tl.sends++
					obsGetNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
					if err == nil && ok && !valOK(v, k) {
						tl.integrity++
						return
					}
				case p < *reads+*puts:
					vbuf = fillVal(vbuf, k, op, vs.draw(rng.Intn))
					_, _, err := cl.Put(k, vbuf)
					tl.sends++
					obsPutNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				default:
					_, err := cl.Del(k)
					tl.sends++
					obsDelNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	stop.Store(true)

	var total tally
	for i := range tallies {
		total.add(&tallies[i])
	}

	// Quiesce fault injection before teardown so Close's drain rounds run
	// deterministically clean, then tear the server down to zero.
	crashes := chaos.Crashes()
	if *chaosOn {
		chaos.Disable()
	}
	var closeErr error
	if inproc {
		closeErr = srv.Close()
	}

	r := obs.Snapshot()
	secs := duration.Seconds()
	opsPerSec := float64(total.sends) / secs
	fmt.Printf("cdrc-load: %d ops (%.0f/s): ok=%d busy=%d err=%d integrity-violations=%d crashes=%d\n",
		total.sends, opsPerSec, total.oks, total.busys, total.errs, total.integrity, crashes)
	reportValClasses(r)
	biasHit := 0.0
	if b, s := r.Counter("core.rc.biased"), r.Counter("core.rc.shared"); b+s > 0 {
		biasHit = float64(b) / float64(b+s)
		fmt.Printf("cdrc-load: rc bias hit-ratio %.3f (biased=%d shared=%d merges=%d)\n",
			biasHit, b, s, r.Counter("core.rc.merge"))
	}
	type quantiles struct {
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
		P999  float64 `json:"p999"`
		Count uint64  `json:"count"`
	}
	latencies := make(map[string]quantiles)
	for _, h := range []struct{ label, name string }{
		{"get", "load.get.ns"}, {"put", "load.put.ns"},
		{"del", "load.del.ns"}, {"scan", "load.scan.ns"},
		{"snapscan", "load.snapscan.ns"}, {"mget", "load.mget.ns"},
		{"batch", "load.batch.ns"},
	} {
		if r.Histograms[h.name].Count == 0 {
			continue
		}
		q := quantiles{
			P50:   r.Quantile(h.name, 0.50),
			P99:   r.Quantile(h.name, 0.99),
			P999:  r.Quantile(h.name, 0.999),
			Count: r.Histograms[h.name].Count,
		}
		latencies[h.label] = q
		fmt.Printf("cdrc-load: %-5s p50=%8.0fns p99=%8.0fns p999=%8.0fns (n=%d)\n",
			h.label, q.P50, q.P99, q.P999, q.Count)
	}
	if *jsonOut != "" {
		summary := struct {
			Pipeline    int                  `json:"pipeline"`
			Conns       int                  `json:"conns"`
			DurationSec float64              `json:"durationSec"`
			Ops         int64                `json:"ops"`
			OpsPerSec   float64              `json:"opsPerSec"`
			OK          int64                `json:"ok"`
			Busy        int64                `json:"busy"`
			Crashes     int64                `json:"crashes"`
			BiasHit     float64              `json:"rcBiasHitRatio"`
			LatencyNs   map[string]quantiles `json:"latencyNs"`
		}{*pipeline, *conns, secs, total.sends, opsPerSec, total.oks, total.busys, crashes, biasHit, latencies}
		j, err := json.MarshalIndent(&summary, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(j, '\n'), 0o644)
		}
		if err != nil {
			fail("write %s: %v", *jsonOut, err)
		}
	}

	// --- gates ---------------------------------------------------------
	if total.errs != 0 {
		fail("%d hard errors (connection or protocol failures)", total.errs)
	}
	if total.integrity != 0 {
		fail("%d value integrity violations (GET returned a value not written for that key)", total.integrity)
	}
	if total.sends != total.oks+total.busys {
		fail("reply conservation broken: sends=%d != ok=%d + busy=%d", total.sends, total.oks, total.busys)
	}
	if total.sends == 0 {
		fail("no operations completed; soak proved nothing")
	}
	if inproc {
		// Server-side conservation: every send was either executed by a
		// worker (server.reply covers completions and crash-BUSYs) or shed
		// at the queue; and the BUSYs the clients saw partition by cause.
		replies := r.Counter("server.reply") + r.Counter("server.busy.queue") + r.Counter("server.busy.lease")
		if total.sends != replies {
			fail("server conservation broken: sends=%d != server.reply+busy.queue+busy.lease=%d", total.sends, replies)
		}
		busyByCause := r.Counter("server.busy.queue") + r.Counter("server.busy.arena") +
			r.Counter("server.busy.crash") + r.Counter("server.busy.lease")
		if total.busys != busyByCause {
			fail("BUSY accounting broken: clients saw %d, server counted %d (queue=%d arena=%d crash=%d lease=%d)",
				total.busys, busyByCause, r.Counter("server.busy.queue"),
				r.Counter("server.busy.arena"), r.Counter("server.busy.crash"),
				r.Counter("server.busy.lease"))
		}
		if srv.ActiveLeases() != 0 {
			fail("lease leak: %d snapshot leases active at quiescence", srv.ActiveLeases())
		}
		if closeErr != nil {
			fail("teardown: %v", closeErr)
		}
		if live := srv.Live(); live != 0 {
			fail("leak: %d nodes live after Close", live)
		}
	}
	fmt.Println("cdrc-load: PASS (conservation, integrity, reclamation)")
}
