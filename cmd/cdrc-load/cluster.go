package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cdrc/internal/chaos"
	"cdrc/internal/obs"
	"cdrc/internal/server"
)

// clusterParams carries the cluster-mode knobs from main's flag block.
type clusterParams struct {
	nodes     int
	duration  time.Duration
	conns     int
	keys      int
	reads     float64
	puts      float64
	shards    int
	workers   int
	chaosOn   bool
	chaosSeed uint64
	crashWk   int
	killNodes int
}

// ackedOp is a writer's record of its last acked PUT/DEL for one key.
type ackedOp struct {
	val     uint64
	present bool
}

// runCluster is the replicated-mode soak: an N-node loopback cluster
// under ClusterClient load, optionally losing whole nodes to the chaos
// injector. Each connection owns a disjoint key partition and retries
// every PUT/DEL until it is acked, recording the acked state — which
// makes the lossless gate exact: after the load (and any failovers),
// every recorded key must read back its last acked state through a
// fresh cluster view. GETs issued during the load double as online
// integrity probes against the same record.
func runCluster(fail func(string, ...any), p clusterParams) {
	if p.chaosOn {
		faults := map[string]chaos.Fault{
			// The same crash-safe worker points as single-node mode...
			"server.worker.op":       {Prob: 0.0005, Crash: true},
			"core.snapshot.acquired": {Prob: 0.0002, Crash: true},
			"arena.alloc":            {Prob: 0.002, Fail: true},
			"arena.free":             {Prob: 0.001, Yields: 1},
		}
		// ...plus whole-node kill points (fired between requests on the
		// node's connection goroutines; budgeted below).
		for i := 0; i < p.nodes; i++ {
			faults[fmt.Sprintf("server.node%d.kill", i)] = chaos.Fault{Prob: 0.0002, Kill: true}
		}
		chaos.Enable(chaos.Config{
			Seed:        p.chaosSeed,
			CrashBudget: p.crashWk,
			KillBudget:  p.killNodes,
			Faults:      faults,
		})
	}
	enq0 := time.Now()
	srvs, err := server.StartCluster(p.nodes, server.Config{
		Shards:           p.shards,
		Workers:          p.workers,
		MaxProcs:         p.workers + p.crashWk + 8,
		ExpectedKeys:     p.keys,
		DebugChecks:      true,
		ReplDrainTimeout: 2 * time.Second,
		ReplPeerPatience: 500 * time.Millisecond,
	})
	if err != nil {
		fail("start cluster: %v", err)
	}
	peers := make([]string, p.nodes)
	for i, s := range srvs {
		peers[i] = s.Addr()
	}
	nshards := srvs[0].NumShards()
	fmt.Printf("cdrc-load: %v against %d-node cluster (conns=%d keys=%d shards=%d chaos=%v kill-budget=%d)\n",
		p.duration, p.nodes, p.conns, p.keys, nshards, p.chaosOn, p.killNodes)

	deadline := time.Now().Add(p.duration)
	perConn := p.keys / p.conns
	if perConn == 0 {
		perConn = 1
	}
	states := make([]map[uint64]ackedOp, p.conns)
	var wg sync.WaitGroup
	tallies := make([]tally, p.conns)
	for i := 0; i < p.conns; i++ {
		states[i] = make(map[uint64]ackedOp, perConn)
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tl := &tallies[id]
			acked := states[id]
			cc := server.NewClusterClient(peers, nshards, server.Backoff{
				Attempts: 16, Seed: p.chaosSeed ^ uint64(id),
			})
			defer cc.Close()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			base := uint64(id * perConn)
			for op := 0; time.Now().Before(deadline); op++ {
				key := base + uint64(rng.Intn(perConn))
				pr := rng.Float64()
				t0 := time.Now()
				switch {
				case pr < p.reads:
					v, ok, err := cc.Get(key)
					tl.sends++
					obsGetNs.Observe(uint64(time.Since(t0)))
					if err != nil {
						// A read may exhaust its budget mid-failover; that is
						// backpressure, not loss.
						tl.busys++
						continue
					}
					tl.oks++
					if want, tracked := acked[key]; tracked {
						if ok != want.present || (ok && vU64(v) != want.val) {
							tl.integrity++
							return
						}
					}
				case pr < p.reads+p.puts:
					val := valTag(key) | uint64(op&0xFFFF)
					if !ackWrite(tl, deadline, func() error {
						_, _, err := cc.Put(key, u64v(val))
						return err
					}) {
						return
					}
					obsPutNs.Observe(uint64(time.Since(t0)))
					acked[key] = ackedOp{val: val, present: true}
				default:
					if !ackWrite(tl, deadline, func() error {
						_, err := cc.Del(key)
						return err
					}) {
						return
					}
					obsDelNs.Observe(uint64(time.Since(t0)))
					acked[key] = ackedOp{}
				}
			}
		}(i)
	}
	wg.Wait()

	var total tally
	for i := range tallies {
		total.add(&tallies[i])
	}
	kills := chaos.Kills()
	crashes := chaos.Crashes()
	if p.chaosOn {
		chaos.Disable()
	}

	// Lossless gate: every tracked key must read back its last acked
	// state through a fresh cluster view (which re-discovers any deaths
	// and promotions on its own).
	var lost int64
	verify := server.NewClusterClient(peers, nshards, server.Backoff{
		Attempts: 32, Seed: p.chaosSeed ^ 0xFEEDFACE,
	})
	for id, acked := range states {
		for key, want := range acked {
			v, ok, err := verify.Get(key)
			if err != nil {
				fail("verify Get(%d): %v", key, err)
			}
			if ok != want.present || (ok && vU64(v) != want.val) {
				fmt.Printf("cdrc-load: LOST acked write: conn %d key %d got (%d,%v) want (%d,%v)\n",
					id, key, vU64(v), ok, want.val, want.present)
				lost++
			}
		}
	}
	verify.Close()

	// Teardown every node (killed nodes already completed their fail-stop
	// teardown inside Kill; Close returns the same recorded error).
	var closeErrs int
	var liveTotal int64
	for i, s := range srvs {
		if err := s.Close(); err != nil {
			fmt.Printf("cdrc-load: node %d teardown: %v\n", i, err)
			closeErrs++
		}
		liveTotal += s.Live()
	}

	r := obs.Snapshot()
	enq := r.Counter("server.repl.enq")
	ack := r.Counter("server.repl.ack")
	replLost := r.Counter("server.repl.lost")
	fmt.Printf("cdrc-load: %d ops in %v: ok=%d busy-retries=%d err=%d kills=%d crashes=%d promotes=%d reroutes=%d\n",
		total.sends, time.Since(enq0).Round(time.Millisecond), total.oks, total.busys, total.errs,
		kills, crashes, r.Counter("server.promote"), r.Counter("cluster.reroute"))
	fmt.Printf("cdrc-load: repl: enq=%d ack=%d lost=%d\n", enq, ack, replLost)

	// --- gates ---------------------------------------------------------
	if lost != 0 {
		fail("%d acked writes lost after failover", lost)
	}
	if total.integrity != 0 {
		fail("%d online integrity violations (GET disagreed with the acked record)", total.integrity)
	}
	if total.errs != 0 {
		fail("%d hard errors", total.errs)
	}
	if enq != ack+replLost {
		fail("repl conservation broken: enq=%d != ack=%d + lost=%d", enq, ack, replLost)
	}
	if total.oks == 0 {
		fail("no operations acked; soak proved nothing")
	}
	if p.killNodes > 0 && kills == 0 {
		fail("kill budget %d never fired; failover path not exercised", p.killNodes)
	}
	if closeErrs != 0 || liveTotal != 0 {
		fail("leak: %d teardown errors, %d nodes live after Close", closeErrs, liveTotal)
	}
	fmt.Println("cdrc-load: PASS (lossless acked writes, repl conservation, reclamation)")
}

// ackWrite retries op until it is acked or the deadline passes; -BUSY
// rounds (an exhausted client-side budget) are counted and retried,
// anything else is a hard error. Returns false on hard error; a write
// abandoned at the deadline is untracked, so it cannot assert loss.
func ackWrite(tl *tally, deadline time.Time, op func() error) bool {
	for {
		tl.sends++
		err := op()
		if err == nil {
			tl.oks++
			return true
		}
		if errors.Is(err, server.ErrBusy) {
			tl.busys++
			if time.Now().After(deadline.Add(2 * time.Second)) {
				tl.errs++
				return false
			}
			continue
		}
		tl.errs++
		fmt.Printf("cdrc-load: hard error: %v\n", err)
		return false
	}
}
