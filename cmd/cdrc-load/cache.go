package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cdrc/collections"
	"cdrc/internal/chaos"
	"cdrc/internal/obs"
	"cdrc/internal/server"
)

var (
	obsCacheGetNs = obs.NewHistogram("load.cache.getex.ns")
	obsCacheSetNs = obs.NewHistogram("load.cache.setex.ns")
	obsCacheExpNs = obs.NewHistogram("load.cache.expire.ns")
)

// cacheParams parameterizes the -cache scenario.
type cacheParams struct {
	addr      string // empty = in-process server
	duration  time.Duration
	conns     int
	keys      int
	zipfS     float64
	zipfV     float64
	writes    float64 // unconditional SETEX fraction (rest is cache-aside GETEX)
	ttl       time.Duration
	minHit    float64 // hit-ratio gate (0 disables)
	jsonOut   string
	shards    int
	workers   int
	arenaCap  uint64
	queue     int
	chaosOn   bool
	chaosSeed uint64
	crashWk   int
	valSize   valSizer
}

// cacheTally extends the base tally with cache-aside outcomes.
type cacheTally struct {
	tally
	hits   int64
	misses int64
}

// runCache drives the Zipf hot-key cache-aside scenario (-cache): every
// op either writes through (SETEX with a TTL) or reads a hot key (GETEX
// touch) and fills it on a miss, so a capped arena sees sustained insert
// pressure and must keep absorbing it by eviction. Gates, beyond the
// base conservation/integrity/reclamation ones: zero -BUSY from arena
// exhaustion (cache mode reroutes ErrExhausted into synchronous
// eviction), the per-shard conservation identity at quiescence, and
// optionally a floor on the client-observed hit ratio.
func runCache(fail func(string, ...any), p cacheParams) {
	inproc := p.addr == ""
	var srv *server.Server
	target := p.addr
	if inproc {
		if p.chaosOn {
			chaos.Enable(chaos.Config{
				Seed:        p.chaosSeed,
				CrashBudget: p.crashWk,
				Faults: map[string]chaos.Fault{
					// Cache-safe crash points ONLY (internal/cache's crash
					// model): the worker op boundary and the three cache
					// points where the handle holds zero counted refs and
					// every popped index record is parked for adoption.
					// core.snapshot.* crashes are NOT safe here — a dying
					// reader's locals would leak entries past the identity.
					"server.worker.op": {Prob: 0.0005, Crash: true},
					"cache.index.push": {Prob: 0.0005, Crash: true},
					"cache.evict.step": {Prob: 0.0005, Crash: true},
					"cache.sweep.op":   {Prob: 0.002, Crash: true},
					"arena.alloc":      {Prob: 0.002, Fail: true},
					"arena.free":       {Prob: 0.001, Yields: 1},
					"acqret.retire":    {Prob: 0.001, Yields: 1},
				},
			})
		}
		var err error
		srv, err = server.New(server.Config{
			Shards:        p.shards,
			Workers:       p.workers,
			MaxProcs:      p.workers + p.crashWk + 8,
			ExpectedKeys:  p.keys,
			ArenaCapacity: p.arenaCap,
			QueueDepth:    p.queue,
			CacheMode:     true,
			DebugChecks:   true,
		})
		if err != nil {
			fail("start cache server: %v", err)
		}
		target = srv.Addr()
	}

	fmt.Printf("cdrc-load: cache %v against %s (conns=%d keys=%d zipf=%.2f writes=%.0f%% ttl=%v arena-cap=%d chaos=%v)\n",
		p.duration, target, p.conns, p.keys, p.zipfS, p.writes*100, p.ttl, p.arenaCap, p.chaosOn)

	deadline := time.Now().Add(p.duration)
	var wg sync.WaitGroup
	var stop atomic.Bool
	tallies := make([]cacheTally, p.conns)
	for i := 0; i < p.conns; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tl := &tallies[id]
			cl, err := server.Dial(target)
			if err != nil {
				tl.errs++
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(id)*7919 + 1))
			zipf := rand.NewZipf(rng, p.zipfS, p.zipfV, uint64(p.keys-1))
			var vbuf []byte
			classify := func(err error) bool {
				switch err {
				case nil:
					tl.oks++
					return true
				case server.ErrBusy:
					tl.busys++
					return true
				default:
					tl.errs++
					return false
				}
			}
			for op := 0; !stop.Load() && time.Now().Before(deadline); op++ {
				k := zipf.Uint64()
				pr := rng.Float64()
				t0 := time.Now()
				switch {
				case pr < p.writes:
					// Write-through churn: sustained insert pressure.
					vbuf = fillVal(vbuf, k, op, p.valSize.draw(rng.Intn))
					_, _, err := cl.SetEx(k, vbuf, p.ttl)
					tl.sends++
					obsCacheSetNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				case pr < p.writes+0.02:
					// Occasional explicit deadline shuffle.
					_, err := cl.Expire(k, p.ttl/2)
					tl.sends++
					obsCacheExpNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				default:
					// Cache-aside read: GETEX touch, fill on miss.
					v, ok, err := cl.GetEx(k, p.ttl)
					tl.sends++
					obsCacheGetNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
					if err != nil {
						continue
					}
					if ok {
						tl.hits++
						if !valOK(v, k) {
							tl.integrity++
							return
						}
						continue
					}
					tl.misses++
					t0 = time.Now()
					vbuf = fillVal(vbuf, k, op, p.valSize.draw(rng.Intn))
					_, _, err = cl.SetEx(k, vbuf, p.ttl)
					tl.sends++
					obsCacheSetNs.Observe(uint64(time.Since(t0)))
					if !classify(err) {
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	stop.Store(true)

	var total cacheTally
	for i := range tallies {
		total.add(&tallies[i].tally)
		total.hits += tallies[i].hits
		total.misses += tallies[i].misses
	}

	crashes := chaos.Crashes()
	if p.chaosOn {
		chaos.Disable()
	}

	// Quiescent identity check BEFORE Close (Close empties the cache).
	var identityErr error
	var st collections.CacheStats
	if inproc {
		identityErr = srv.CheckCacheIdentity()
		st = srv.CacheStats()
	}
	var closeErr error
	if inproc {
		closeErr = srv.Close()
	}

	r := obs.Snapshot()
	secs := p.duration.Seconds()
	opsPerSec := float64(total.sends) / secs
	hitRatio := 0.0
	if total.hits+total.misses > 0 {
		hitRatio = float64(total.hits) / float64(total.hits+total.misses)
	}
	evictsPerSec := float64(st.Evicts) / secs
	fmt.Printf("cdrc-load: %d ops (%.0f/s): ok=%d busy=%d err=%d integrity-violations=%d crashes=%d\n",
		total.sends, opsPerSec, total.oks, total.busys, total.errs, total.integrity, crashes)
	fmt.Printf("cdrc-load: cache hit-ratio=%.3f (hits=%d misses=%d) evicts=%d (%.0f/s) expires=%d unindexed=%d\n",
		hitRatio, total.hits, total.misses, st.Evicts, evictsPerSec, st.Expires, st.Unindexed)

	type quantiles struct {
		P50   float64 `json:"p50"`
		P99   float64 `json:"p99"`
		P999  float64 `json:"p999"`
		Count uint64  `json:"count"`
	}
	latencies := make(map[string]quantiles)
	for _, h := range []struct{ label, name string }{
		{"getex", "load.cache.getex.ns"},
		{"setex", "load.cache.setex.ns"},
		{"expire", "load.cache.expire.ns"},
	} {
		if r.Histograms[h.name].Count == 0 {
			continue
		}
		q := quantiles{
			P50:   r.Quantile(h.name, 0.50),
			P99:   r.Quantile(h.name, 0.99),
			P999:  r.Quantile(h.name, 0.999),
			Count: r.Histograms[h.name].Count,
		}
		latencies[h.label] = q
		fmt.Printf("cdrc-load: %-6s p50=%8.0fns p99=%8.0fns p999=%8.0fns (n=%d)\n",
			h.label, q.P50, q.P99, q.P999, q.Count)
	}
	if p.jsonOut != "" {
		summary := struct {
			Conns        int                  `json:"conns"`
			DurationSec  float64              `json:"durationSec"`
			ArenaCap     uint64               `json:"arenaCap"`
			Ops          int64                `json:"ops"`
			OpsPerSec    float64              `json:"opsPerSec"`
			OK           int64                `json:"ok"`
			Busy         int64                `json:"busy"`
			Crashes      int64                `json:"crashes"`
			HitRatio     float64              `json:"hitRatio"`
			Evicts       uint64               `json:"evicts"`
			EvictsPerSec float64              `json:"evictsPerSec"`
			Expires      uint64               `json:"expires"`
			Unindexed    uint64               `json:"unindexed"`
			LatencyNs    map[string]quantiles `json:"latencyNs"`
		}{p.conns, secs, p.arenaCap, total.sends, opsPerSec, total.oks, total.busys,
			crashes, hitRatio, st.Evicts, evictsPerSec, st.Expires, st.Unindexed, latencies}
		j, err := json.MarshalIndent(&summary, "", "  ")
		if err == nil {
			err = os.WriteFile(p.jsonOut, append(j, '\n'), 0o644)
		}
		if err != nil {
			fail("write %s: %v", p.jsonOut, err)
		}
	}

	// --- gates ---------------------------------------------------------
	if total.errs != 0 {
		fail("%d hard errors (connection or protocol failures)", total.errs)
	}
	if total.integrity != 0 {
		fail("%d value integrity violations", total.integrity)
	}
	if total.sends != total.oks+total.busys {
		fail("reply conservation broken: sends=%d != ok=%d + busy=%d", total.sends, total.oks, total.busys)
	}
	if total.sends == 0 {
		fail("no operations completed; soak proved nothing")
	}
	if p.minHit > 0 && hitRatio < p.minHit {
		fail("hit ratio %.3f below the %.3f floor", hitRatio, p.minHit)
	}
	if inproc {
		// The tentpole backpressure gate: an exhausted arena must be
		// absorbed by eviction, never surfaced as -BUSY.
		if n := r.Counter("server.busy.arena"); n != 0 {
			fail("%d -BUSY replies from arena exhaustion in cache mode (eviction must absorb them)", n)
		}
		replies := r.Counter("server.reply") + r.Counter("server.busy.queue") + r.Counter("server.busy.lease")
		if total.sends != replies {
			fail("server conservation broken: sends=%d != server.reply+busy.queue+busy.lease=%d", total.sends, replies)
		}
		if identityErr != nil {
			fail("cache conservation identity: %v", identityErr)
		}
		if closeErr != nil {
			fail("teardown: %v", closeErr)
		}
		if live := srv.Live(); live != 0 {
			fail("leak: %d nodes live after Close", live)
		}
	}
	fmt.Println("cdrc-load: PASS (cache conservation, identity, integrity, reclamation)")
}
