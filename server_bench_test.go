package cdrc_test

// BenchmarkServerPipelined lives in an external test package because
// internal/server (via collections) depends on the root cdrc package.

import (
	"encoding/binary"
	"fmt"
	"testing"

	"cdrc/internal/server"
)

// BenchmarkServerPipelined measures the internal/server loopback hot
// path (GET on resident keys) at pipeline depth 1 (lock-step round
// trips, the pre-pipeline behaviour) and depth 16 (the pipelined
// protocol): ns/op is one request's share of the wall clock, and
// -benchmem shows the per-request allocation count, which must be ~0 at
// depth 16 on the warmed path. cmd/cdrc-load drives the same comparison
// at soak scale.
func BenchmarkServerPipelined(b *testing.B) {
	for _, depth := range []int{1, 16} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			srv, err := server.New(server.Config{Shards: 4, Workers: 4, ExpectedKeys: 1 << 12})
			if err != nil {
				b.Fatalf("server.New: %v", err)
			}
			defer srv.Close()
			cl, err := server.Dial(srv.Addr())
			if err != nil {
				b.Fatalf("Dial: %v", err)
			}
			defer cl.Close()
			const nKeys = 1024
			var vbuf [8]byte
			for k := uint64(0); k < nKeys; k++ {
				binary.LittleEndian.PutUint64(vbuf[:], k*3)
				if _, _, err := cl.Put(k, vbuf[:]); err != nil {
					b.Fatalf("seed Put: %v", err)
				}
			}
			var batch server.Batch
			results := make([]server.Result, 0, depth)
			// Warm the per-connection ring and client buffers.
			for i := 0; i < 4; i++ {
				batch.Reset()
				for j := 0; j < depth; j++ {
					batch.Get(uint64(j))
				}
				if results, err = cl.DoBatch(&batch, results[:0]); err != nil {
					b.Fatalf("warmup DoBatch: %v", err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; {
				batch.Reset()
				n := depth
				if rem := b.N - i; rem < n {
					n = rem
				}
				for j := 0; j < n; j++ {
					batch.Get(uint64((i + j) % nKeys))
				}
				results, err = cl.DoBatch(&batch, results[:0])
				if err != nil {
					b.Fatalf("DoBatch: %v", err)
				}
				i += n
			}
			b.StopTimer()
			elapsed := b.Elapsed().Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed/1e3, "kops/s")
			}
		})
	}
}
