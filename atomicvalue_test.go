package cdrc_test

import (
	"sync"
	"testing"

	"cdrc"
)

// wide is deliberately multiple cache lines: tearing would be visible as
// disagreeing fields.
type wide struct {
	A, B, C, D, E, F, G, H uint64
}

func mkWide(x uint64) wide { return wide{x, x, x, x, x, x, x, x} }

func (w wide) consistent() bool {
	return w.A == w.B && w.B == w.C && w.C == w.D &&
		w.D == w.E && w.E == w.F && w.F == w.G && w.G == w.H
}

func TestAtomicValueBasic(t *testing.T) {
	a := cdrc.NewAtomicValue(4, mkWide(1))
	v := a.View()
	defer v.Close()
	if got := v.Load(); got != mkWide(1) {
		t.Fatalf("Load = %+v", got)
	}
	v.Store(mkWide(2))
	if got := v.Load(); got != mkWide(2) {
		t.Fatalf("Load after Store = %+v", got)
	}
	if old := v.Swap(mkWide(3)); old != mkWide(2) {
		t.Fatalf("Swap returned %+v", old)
	}
	if got := v.Load(); got != mkWide(3) {
		t.Fatalf("Load after Swap = %+v", got)
	}
	got := v.Update(func(w wide) wide { return mkWide(w.A + 1) })
	if got != mkWide(4) {
		t.Fatalf("Update returned %+v", got)
	}
}

// No torn reads: concurrent writers store self-consistent values;
// concurrent readers must never observe a mixed one.
func TestAtomicValueNoTearing(t *testing.T) {
	const writers = 2
	const readers = 4
	const iters = 20000
	a := cdrc.NewAtomicValue(writers+readers+1, mkWide(1))

	var readersWG, writersWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			v := a.View()
			defer v.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := v.Load(); !got.consistent() {
					t.Errorf("torn read: %+v", got)
					return
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(base uint64) {
			defer writersWG.Done()
			v := a.View()
			defer v.Close()
			for i := uint64(0); i < iters; i++ {
				v.Store(mkWide(base + i))
			}
		}(uint64(w+1) * 1_000_000)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	v := a.View()
	if !v.Load().consistent() {
		t.Fatal("final value torn")
	}
	v.Close()
}

// Update must be atomic: concurrent increments all land.
func TestAtomicValueUpdateAtomic(t *testing.T) {
	const workers = 4
	const per = 5000
	a := cdrc.NewAtomicValue(workers+1, mkWide(0))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := a.View()
			defer v.Close()
			for i := 0; i < per; i++ {
				v.Update(func(x wide) wide { return mkWide(x.A + 1) })
			}
		}()
	}
	wg.Wait()
	v := a.View()
	defer v.Close()
	got := v.Load()
	if !got.consistent() || got.A != workers*per {
		t.Fatalf("final = %+v, want all fields %d", got, workers*per)
	}
}

// Memory stays bounded: boxes of overwritten values reclaim themselves.
func TestAtomicValueMemoryBounded(t *testing.T) {
	a := cdrc.NewAtomicValue(2, mkWide(0))
	v := a.View()
	for i := uint64(0); i < 50000; i++ {
		v.Store(mkWide(i))
	}
	v.Close()
	if live := a.Live(); live > 500 {
		t.Fatalf("Live boxes = %d after churn; deferral bound exceeded", live)
	}
}
